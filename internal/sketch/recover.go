package sketch

import "sync"

// recoverAccum is the decode-side accumulator of SSparse.Recover: the
// (key, value) pairs recovered so far, held key-sorted in two parallel
// slices. It replaces the per-decode `make(map[uint64]int64)` whose
// hashing (aeshashbody) led the pr9 CPU profile: a decode holds at
// most s + O(1) distinct entries, so binary-search insertion with a
// memmove shift beats hashing, the sorted invariant makes the final
// key order free (no per-decode sort), and pooling makes the
// steady-state decode allocation-flat — the same move pr9 made for
// oracle scratch.
type recoverAccum struct {
	keys []uint64
	vals []int64
}

// recoverAccums pools accumulators across decodes. Contents never leak
// between uses (putRecoverAccum truncates), so pooling cannot affect
// results — Recover stays a pure function of the sketch state.
var recoverAccums = sync.Pool{New: func() any { return new(recoverAccum) }}

func getRecoverAccum() *recoverAccum { return recoverAccums.Get().(*recoverAccum) }

func putRecoverAccum(a *recoverAccum) {
	a.keys = a.keys[:0]
	a.vals = a.vals[:0]
	recoverAccums.Put(a)
}

// add records the recovered pair (k, v), keeping keys sorted. conflict
// reports that k was already recovered with a different value — the
// not-s-sparse signal. Re-adding an identical pair is a no-op.
func (a *recoverAccum) add(k uint64, v int64) (conflict bool) {
	lo, hi := 0, len(a.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a.keys[mid] < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a.keys) && a.keys[lo] == k {
		return a.vals[lo] != v
	}
	a.keys = append(a.keys, 0)
	copy(a.keys[lo+1:], a.keys[lo:])
	a.keys[lo] = k
	a.vals = append(a.vals, 0)
	copy(a.vals[lo+1:], a.vals[lo:])
	a.vals[lo] = v
	return false
}
