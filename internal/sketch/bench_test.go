package sketch

import (
	"testing"

	"repro/internal/xrand"
)

func BenchmarkL0Update(b *testing.B) {
	spec := NewL0Spec(xrand.New(1), 24, 12, 8)
	sk := spec.NewL0()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(uint64(i)*2654435761+1, 1)
	}
}

func BenchmarkL0Sample(b *testing.B) {
	spec := NewL0Spec(xrand.New(2), 24, 12, 8)
	sk := spec.NewL0()
	for i := 0; i < 10000; i++ {
		sk.Update(uint64(i)*2654435761+1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Sample()
	}
}

func BenchmarkSSparseRecover(b *testing.B) {
	spec := NewSSparseSpec(xrand.New(3), 12, 8)
	sk := spec.NewSSparse()
	for i := 0; i < 10; i++ {
		sk.Update(uint64(i)*7+1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Recover()
	}
}

func BenchmarkSpanningForest(b *testing.B) {
	// Build once per iteration: bank construction dominates and is the
	// realistic cost of the MR pipeline.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := NewIncidenceSpec(xrand.New(uint64(i)), 128, 10, 12, 8)
		bank := spec.NewBank()
		for v := 0; v < 127; v++ {
			bank.AddEdge(int32(v), int32(v+1))
		}
		if _, _, err := bank.SpanningForest(); err != nil {
			b.Fatal(err)
		}
	}
}
