package sketch

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

func BenchmarkL0Update(b *testing.B) {
	spec := NewL0Spec(xrand.New(1), 24, 12, 8)
	sk := spec.NewL0()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Update(uint64(i)*2654435761+1, 1)
	}
}

func BenchmarkL0Sample(b *testing.B) {
	spec := NewL0Spec(xrand.New(2), 24, 12, 8)
	sk := spec.NewL0()
	for i := 0; i < 10000; i++ {
		sk.Update(uint64(i)*2654435761+1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Sample()
	}
}

func BenchmarkSSparseRecover(b *testing.B) {
	spec := NewSSparseSpec(xrand.New(3), 12, 8)
	sk := spec.NewSSparse()
	for i := 0; i < 10; i++ {
		sk.Update(uint64(i)*7+1, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Recover()
	}
}

// BenchmarkBankBuildWorkers measures the sharded bank construction at
// several worker counts on a largish instance (the workers-scaling row of
// EXPERIMENTS.md). The output is bit-identical across sub-benchmarks; only
// wall-clock changes.
func BenchmarkBankBuildWorkers(b *testing.B) {
	const n = 512
	edges := ringEdges(n)
	spec := NewIncidenceSpec(xrand.New(5), n, 10, 12, 8)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				spec.BuildBank(edges, workers)
			}
		})
	}
}

// BenchmarkOneSparseUpdate measures the per-cell update kernel: the
// legacy scalar path pays a full square-and-multiply powm per cell,
// the hoisted path one window-table Pow plus the two-mulm updateRaw —
// even before the Pow amortizes across a sketch's cells (rows × levels
// share it in real updates). The acceptance bar is ≥ 4x per-cell
// throughput, and both paths must be allocation-free.
func BenchmarkOneSparseUpdate(b *testing.B) {
	z := NewFingerprintBase(xrand.New(7))
	zp := newFpPow(z)
	b.Run("legacy-scalar", func(b *testing.B) {
		cell := NewOneSparse(z)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cell.Update(uint64(i)*2654435761+1, 1)
		}
	})
	b.Run("hoisted-kernel", func(b *testing.B) {
		cell := NewOneSparse(z)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			key := uint64(i)*2654435761 + 1
			cell.updateRaw(key%prime, 1, zp.Pow(key))
		}
	})
}

// BenchmarkBankUpdateBlock measures the bank-level block absorb in the
// steady state: one bank, blocks of edges inserted through the hoisted
// kernel. Zero allocs/op — asserted by TestUpdatePathsAllocationFlat
// and visible in the make bench-allocs CI step.
func BenchmarkBankUpdateBlock(b *testing.B) {
	const n = 256
	edges := ringEdges(n)
	spec := NewIncidenceSpec(xrand.New(9), n, 6, 12, 8)
	bank := spec.NewBank()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.AddEdgeBlock(edges)
	}
}

func BenchmarkSpanningForest(b *testing.B) {
	// Build once per iteration: bank construction dominates and is the
	// realistic cost of the MR pipeline.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec := NewIncidenceSpec(xrand.New(uint64(i)), 128, 10, 12, 8)
		bank := spec.NewBank()
		for v := 0; v < 127; v++ {
			bank.AddEdge(int32(v), int32(v+1))
		}
		if _, _, err := bank.SpanningForest(); err != nil {
			b.Fatal(err)
		}
	}
}
