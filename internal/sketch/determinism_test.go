package sketch

import (
	"testing"

	"repro/internal/graph"
)

// TestSpanningForestDeterministic pins the sorted-representative walk in
// SpanningForest: Boruvka unions used to apply in uf.Sets() map order, so
// conflicting picks resolved differently run to run and the forest edge
// list changed between calls on the same bank.
func TestSpanningForestDeterministic(t *testing.T) {
	g := graph.GNM(48, 140, graph.WeightConfig{}, 31)
	var ref []graph.Edge
	for trial := 0; trial < 20; trial++ {
		bank := buildBank(t, g, 32)
		forest, _, err := bank.SpanningForest()
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = forest
			continue
		}
		if len(forest) != len(ref) {
			t.Fatalf("trial %d: forest has %d edges, first run had %d", trial, len(forest), len(ref))
		}
		for i := range forest {
			if forest[i].Key() != ref[i].Key() {
				t.Fatalf("trial %d: forest[%d] = (%d,%d), first run had (%d,%d)",
					trial, i, forest[i].U, forest[i].V, ref[i].U, ref[i].V)
			}
		}
	}
}
