package sketch

import "repro/internal/xrand"

// SSparseSpec fixes the shared randomness (bucket hash functions and the
// fingerprint base) for a family of mergeable s-sparse sketches. Two
// sketches can be merged only if they were created from the same spec.
type SSparseSpec struct {
	s       int // sparsity target
	rows    int // independent repetitions
	buckets int // buckets per row (2s)
	hashes  []*xrand.PolyHash
	z       uint64
	zpow    *fpPow // fixed-base window table for z (fppow.go)
}

// NewSSparseSpec creates a spec for recovering vectors with at most s
// non-zeros, with failure probability exponentially small in rows.
func NewSSparseSpec(r *xrand.RNG, s, rows int) *SSparseSpec {
	if s < 1 {
		s = 1
	}
	if rows < 1 {
		rows = 1
	}
	spec := &SSparseSpec{
		s:       s,
		rows:    rows,
		buckets: 2 * s,
		z:       NewFingerprintBase(r),
	}
	spec.zpow = newFpPow(spec.z)
	for i := 0; i < rows; i++ {
		spec.hashes = append(spec.hashes, xrand.NewPolyHash(r.Split(uint64(i)), 2))
	}
	return spec
}

// SSparse is a mergeable sketch that exactly recovers implicit vectors
// with at most s non-zero entries (with high probability).
type SSparse struct {
	spec  *SSparseSpec
	cells []OneSparse // rows * buckets
}

// NewSSparse returns a zeroed sketch for the spec.
func (spec *SSparseSpec) NewSSparse() *SSparse {
	cells := make([]OneSparse, spec.rows*spec.buckets)
	for i := range cells {
		cells[i] = NewOneSparse(spec.z)
	}
	return &SSparse{spec: spec, cells: cells}
}

// Words returns the storage footprint in 64-bit words.
func (sk *SSparse) Words() int { return 4 * len(sk.cells) }

// Reset zeroes the sketch in place — every cell back to the empty
// OneSparse of the spec's fingerprint base — so the allocation can be
// reused for a fresh implicit vector.
func (sk *SSparse) Reset() {
	for i := range sk.cells {
		sk.cells[i] = NewOneSparse(sk.spec.z)
	}
}

// Update adds delta at key: the per-(key, delta) invariants — the key
// reduction, the field delta and z^key — are computed once and shared
// by every row's cell through updateRaw.
func (sk *SSparse) Update(key uint64, delta int64) {
	sk.updateRaw(key%prime, toField(delta), sk.spec.zpow.Pow(key))
}

// UpdateBlock applies a block of updates (keys[i], deltas[i]) in order,
// hoisting the per-update invariants out of the row loop. Bit-identical
// to calling Update per pair.
func (sk *SSparse) UpdateBlock(keys []uint64, deltas []int64) {
	if len(keys) != len(deltas) {
		panic("sketch: UpdateBlock length mismatch")
	}
	zp := sk.spec.zpow
	for i, key := range keys {
		sk.updateRaw(key%prime, toField(deltas[i]), zp.Pow(key))
	}
}

// updateRaw fans one hoisted update out to every row: the degree-1 row
// hash a0 + a1·x picks the bucket and the cell kernel absorbs the
// precomputed (keyMod, d, zPowKey) triple.
func (sk *SSparse) updateRaw(keyMod, d, zPowKey uint64) {
	spec := sk.spec
	for row := 0; row < spec.rows; row++ {
		b := spec.hashes[row].HashRangeMod(keyMod, spec.buckets)
		sk.cells[row*spec.buckets+b].updateRaw(keyMod, d, zPowKey)
	}
}

// Merge absorbs another sketch from the same spec.
func (sk *SSparse) Merge(o *SSparse) {
	if sk.spec != o.spec {
		panic("sketch: merging SSparse sketches from different specs")
	}
	for i := range sk.cells {
		sk.cells[i].Merge(o.cells[i])
	}
}

// Clone returns an independent copy.
func (sk *SSparse) Clone() *SSparse {
	c := &SSparse{spec: sk.spec, cells: append([]OneSparse(nil), sk.cells...)}
	return c
}

// Recover attempts to decode the non-zero entries. If the implicit vector
// has at most s non-zeros, it is returned exactly (whp). If more, the
// decode either returns ok=false or a subset of entries that passed their
// fingerprints; callers relying on exactness should check len <= s and
// use independent verification where needed. Entries are sorted by key.
func (sk *SSparse) Recover() (keys []uint64, values []int64, ok bool) {
	spec := sk.spec
	acc := getRecoverAccum()
	defer putRecoverAccum(acc)
	corrupt := false
	for row := 0; row < spec.rows; row++ {
		for b := 0; b < spec.buckets; b++ {
			cell := &sk.cells[row*spec.buckets+b]
			if cell.IsZero() {
				continue
			}
			k, v, cok := cell.recoverFast(spec.zpow)
			if !cok {
				corrupt = true // bucket holds >= 2 colliding keys
				continue
			}
			if acc.add(k, v) {
				return nil, nil, false // inconsistent recovery: not s-sparse
			}
		}
	}
	if len(acc.keys) == 0 {
		return nil, nil, !corrupt // all-zero only if no bucket was corrupt
	}
	if len(acc.keys) > spec.s {
		return nil, nil, false
	}
	// Verify: replay the recovered entries through fresh cells and compare
	// against every row. This catches the case where collisions hid a key
	// in all rows.
	if corrupt {
		check := spec.NewSSparse()
		for i, k := range acc.keys {
			check.Update(k, acc.vals[i])
		}
		for i := range sk.cells {
			if sk.cells[i] != check.cells[i] {
				return nil, nil, false
			}
		}
	}
	keys = append([]uint64(nil), acc.keys...)
	values = append([]int64(nil), acc.vals...)
	return keys, values, true
}
