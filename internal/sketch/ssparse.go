package sketch

import (
	"sort"

	"repro/internal/xrand"
)

// SSparseSpec fixes the shared randomness (bucket hash functions and the
// fingerprint base) for a family of mergeable s-sparse sketches. Two
// sketches can be merged only if they were created from the same spec.
type SSparseSpec struct {
	s       int // sparsity target
	rows    int // independent repetitions
	buckets int // buckets per row (2s)
	hashes  []*xrand.PolyHash
	z       uint64
}

// NewSSparseSpec creates a spec for recovering vectors with at most s
// non-zeros, with failure probability exponentially small in rows.
func NewSSparseSpec(r *xrand.RNG, s, rows int) *SSparseSpec {
	if s < 1 {
		s = 1
	}
	if rows < 1 {
		rows = 1
	}
	spec := &SSparseSpec{
		s:       s,
		rows:    rows,
		buckets: 2 * s,
		z:       NewFingerprintBase(r),
	}
	for i := 0; i < rows; i++ {
		spec.hashes = append(spec.hashes, xrand.NewPolyHash(r.Split(uint64(i)), 2))
	}
	return spec
}

// SSparse is a mergeable sketch that exactly recovers implicit vectors
// with at most s non-zero entries (with high probability).
type SSparse struct {
	spec  *SSparseSpec
	cells []OneSparse // rows * buckets
}

// NewSSparse returns a zeroed sketch for the spec.
func (spec *SSparseSpec) NewSSparse() *SSparse {
	cells := make([]OneSparse, spec.rows*spec.buckets)
	for i := range cells {
		cells[i] = NewOneSparse(spec.z)
	}
	return &SSparse{spec: spec, cells: cells}
}

// Words returns the storage footprint in 64-bit words.
func (sk *SSparse) Words() int { return 4 * len(sk.cells) }

// Reset zeroes the sketch in place — every cell back to the empty
// OneSparse of the spec's fingerprint base — so the allocation can be
// reused for a fresh implicit vector.
func (sk *SSparse) Reset() {
	for i := range sk.cells {
		sk.cells[i] = NewOneSparse(sk.spec.z)
	}
}

// Update adds delta at key.
func (sk *SSparse) Update(key uint64, delta int64) {
	spec := sk.spec
	for row := 0; row < spec.rows; row++ {
		b := spec.hashes[row].HashRange(key, spec.buckets)
		sk.cells[row*spec.buckets+b].Update(key, delta)
	}
}

// Merge absorbs another sketch from the same spec.
func (sk *SSparse) Merge(o *SSparse) {
	if sk.spec != o.spec {
		panic("sketch: merging SSparse sketches from different specs")
	}
	for i := range sk.cells {
		sk.cells[i].Merge(o.cells[i])
	}
}

// Clone returns an independent copy.
func (sk *SSparse) Clone() *SSparse {
	c := &SSparse{spec: sk.spec, cells: append([]OneSparse(nil), sk.cells...)}
	return c
}

// Recover attempts to decode the non-zero entries. If the implicit vector
// has at most s non-zeros, it is returned exactly (whp). If more, the
// decode either returns ok=false or a subset of entries that passed their
// fingerprints; callers relying on exactness should check len <= s and
// use independent verification where needed. Entries are sorted by key.
func (sk *SSparse) Recover() (keys []uint64, values []int64, ok bool) {
	spec := sk.spec
	found := make(map[uint64]int64)
	corrupt := false
	for row := 0; row < spec.rows; row++ {
		for b := 0; b < spec.buckets; b++ {
			cell := &sk.cells[row*spec.buckets+b]
			if cell.IsZero() {
				continue
			}
			k, v, cok := cell.Recover()
			if !cok {
				corrupt = true // bucket holds >= 2 colliding keys
				continue
			}
			if prev, seen := found[k]; seen && prev != v {
				return nil, nil, false // inconsistent recovery: not s-sparse
			}
			found[k] = v
		}
	}
	if len(found) == 0 {
		return nil, nil, !corrupt // all-zero only if no bucket was corrupt
	}
	if len(found) > spec.s {
		return nil, nil, false
	}
	// Verify: replay the recovered entries through fresh cells and compare
	// against every row. This catches the case where collisions hid a key
	// in all rows.
	if corrupt {
		check := spec.NewSSparse()
		//lint:ordered replay into fresh cells; Update is add/XOR, commutative
		for k, v := range found {
			check.Update(k, v)
		}
		for i := range sk.cells {
			if sk.cells[i] != check.cells[i] {
				return nil, nil, false
			}
		}
	}
	keys = make([]uint64, 0, len(found))
	//lint:ordered key collection, sorted immediately below
	for k := range found {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	values = make([]int64, len(keys))
	for i, k := range keys {
		values[i] = found[k]
	}
	return keys, values, true
}
