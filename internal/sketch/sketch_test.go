package sketch

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestFieldArithmetic(t *testing.T) {
	if addm(prime-1, 1) != 0 {
		t.Fatal("addm wrap")
	}
	if subm(0, 1) != prime-1 {
		t.Fatal("subm wrap")
	}
	if mulm(1<<60, 2) != 1 { // 2^61 mod p = 1
		t.Fatal("mulm reduction")
	}
	if powm(3, 0) != 1 || powm(3, 4) != 81 {
		t.Fatal("powm small")
	}
	// Fermat: a^(p-1) = 1.
	if powm(12345, prime-1) != 1 {
		t.Fatal("Fermat failed")
	}
	for _, a := range []uint64{1, 2, 7, 1 << 40, prime - 2} {
		if mulm(a, invm(a)) != 1 {
			t.Fatalf("inverse failed for %d", a)
		}
	}
}

func TestToField(t *testing.T) {
	if toField(5) != 5 {
		t.Fatal("positive")
	}
	if toField(-5) != prime-5 {
		t.Fatal("negative")
	}
	if addm(toField(-5), toField(5)) != 0 {
		t.Fatal("cancellation")
	}
}

func TestOneSparseRecovery(t *testing.T) {
	r := xrand.New(1)
	z := NewFingerprintBase(r)
	c := NewOneSparse(z)
	c.Update(42, 7)
	k, v, ok := c.Recover()
	if !ok || k != 42 || v != 7 {
		t.Fatalf("recover = (%d,%d,%v), want (42,7,true)", k, v, ok)
	}
}

func TestOneSparseNegativeValue(t *testing.T) {
	c := NewOneSparse(NewFingerprintBase(xrand.New(2)))
	c.Update(99, -3)
	k, v, ok := c.Recover()
	if !ok || k != 99 || v != -3 {
		t.Fatalf("recover = (%d,%d,%v), want (99,-3,true)", k, v, ok)
	}
}

func TestOneSparseInsertDelete(t *testing.T) {
	c := NewOneSparse(NewFingerprintBase(xrand.New(3)))
	c.Update(10, 1)
	c.Update(20, 1)
	c.Update(10, -1) // now 1-sparse at 20
	k, v, ok := c.Recover()
	if !ok || k != 20 || v != 1 {
		t.Fatalf("after delete: (%d,%d,%v)", k, v, ok)
	}
	c.Update(20, -1) // zero vector
	if !c.IsZero() {
		t.Fatal("zero vector not detected")
	}
	if _, _, ok := c.Recover(); ok {
		t.Fatal("recovered from zero vector")
	}
}

func TestOneSparseDetectsTwoSparse(t *testing.T) {
	miss := 0
	for trial := 0; trial < 200; trial++ {
		c := NewOneSparse(NewFingerprintBase(xrand.New(uint64(trial + 10))))
		c.Update(uint64(trial*3+1), 1)
		c.Update(uint64(trial*5+2), 1)
		if _, _, ok := c.Recover(); ok {
			miss++
		}
	}
	if miss > 0 {
		t.Fatalf("2-sparse vector passed recovery %d/200 times", miss)
	}
}

func TestOneSparseMergeLinearity(t *testing.T) {
	z := NewFingerprintBase(xrand.New(5))
	a, b := NewOneSparse(z), NewOneSparse(z)
	a.Update(7, 2)
	b.Update(7, 3)
	a.Merge(b)
	k, v, ok := a.Recover()
	if !ok || k != 7 || v != 5 {
		t.Fatalf("merged recover = (%d,%d,%v)", k, v, ok)
	}
}

func TestOneSparseLargeKey(t *testing.T) {
	// Keys near the field size must round-trip.
	c := NewOneSparse(NewFingerprintBase(xrand.New(6)))
	key := uint64(prime - 2)
	c.Update(key, 11)
	k, v, ok := c.Recover()
	if !ok || k != key || v != 11 {
		t.Fatalf("large key recover = (%d,%d,%v)", k, v, ok)
	}
}

func TestSSparseExactRecovery(t *testing.T) {
	r := xrand.New(7)
	spec := NewSSparseSpec(r, 8, 6)
	sk := spec.NewSSparse()
	want := map[uint64]int64{3: 1, 17: -2, 900: 5, 12345: 7, 77: 1}
	for k, v := range want {
		sk.Update(k, v)
	}
	keys, values, ok := sk.Recover()
	if !ok {
		t.Fatal("recovery failed")
	}
	if len(keys) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(keys), len(want))
	}
	for i, k := range keys {
		if want[k] != values[i] {
			t.Fatalf("key %d: value %d, want %d", k, values[i], want[k])
		}
	}
}

func TestSSparseZero(t *testing.T) {
	spec := NewSSparseSpec(xrand.New(8), 4, 4)
	sk := spec.NewSSparse()
	keys, _, ok := sk.Recover()
	if !ok || len(keys) != 0 {
		t.Fatal("zero sketch should recover empty")
	}
	sk.Update(5, 3)
	sk.Update(5, -3)
	keys, _, ok = sk.Recover()
	if !ok || len(keys) != 0 {
		t.Fatal("cancelled sketch should recover empty")
	}
}

func TestSSparseOverflowDetected(t *testing.T) {
	// Far more non-zeros than s: recovery must not return ok with a wrong
	// small answer.
	spec := NewSSparseSpec(xrand.New(9), 4, 6)
	sk := spec.NewSSparse()
	for i := uint64(0); i < 200; i++ {
		sk.Update(i*7+1, 1)
	}
	if _, _, ok := sk.Recover(); ok {
		t.Fatal("overfull sketch claimed successful recovery")
	}
}

func TestSSparseMerge(t *testing.T) {
	spec := NewSSparseSpec(xrand.New(10), 6, 6)
	a, b := spec.NewSSparse(), spec.NewSSparse()
	a.Update(1, 1)
	a.Update(2, 2)
	b.Update(2, -2)
	b.Update(3, 3)
	a.Merge(b)
	keys, values, ok := a.Recover()
	if !ok || len(keys) != 2 {
		t.Fatalf("merge recover: ok=%v keys=%v", ok, keys)
	}
	if keys[0] != 1 || values[0] != 1 || keys[1] != 3 || values[1] != 3 {
		t.Fatalf("merge content wrong: %v %v", keys, values)
	}
}

func TestSSparseMergeDifferentSpecsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	a := NewSSparseSpec(xrand.New(11), 4, 4).NewSSparse()
	b := NewSSparseSpec(xrand.New(12), 4, 4).NewSSparse()
	a.Merge(b)
}

func TestSSparseProperty(t *testing.T) {
	// Random <=s-sparse vectors with inserts and deletes recover exactly.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		spec := NewSSparseSpec(r.Split(1), 10, 8)
		sk := spec.NewSSparse()
		want := map[uint64]int64{}
		for i := 0; i < 10; i++ {
			k := uint64(r.Intn(100000))
			v := int64(r.Intn(9) - 4)
			sk.Update(k, v)
			want[k] += v
			if want[k] == 0 {
				delete(want, k)
			}
		}
		keys, values, ok := sk.Recover()
		if !ok || len(keys) != len(want) {
			return false
		}
		for i, k := range keys {
			if want[k] != values[i] {
				return false
			}
		}
		return true
	}
	// Recovery is probabilistic (failure probability exponentially small
	// in rows but nonzero), so the input corpus is pinned: a time-seeded
	// corpus occasionally hits a genuinely undecodable input and flakes.
	cfg := &quick.Config{MaxCount: 60, Rand: xrand.Std(1)}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestL0SampleReturnsSupport(t *testing.T) {
	r := xrand.New(13)
	spec := NewL0Spec(r, 17, 10, 8)
	sk := spec.NewL0()
	support := map[uint64]int64{}
	for i := 0; i < 500; i++ {
		k := uint64(i*13 + 5)
		sk.Update(k, 2)
		support[k] = 2
	}
	k, v, ok := sk.Sample()
	if !ok {
		t.Fatal("sample failed on non-zero vector")
	}
	if support[k] != v {
		t.Fatalf("sampled (%d,%d) not in support", k, v)
	}
}

func TestL0SampleAfterDeletions(t *testing.T) {
	spec := NewL0Spec(xrand.New(14), 17, 10, 8)
	sk := spec.NewL0()
	for i := uint64(0); i < 300; i++ {
		sk.Update(i+1, 1)
	}
	for i := uint64(0); i < 300; i++ {
		if i+1 != 250 {
			sk.Update(i+1, -1)
		}
	}
	k, v, ok := sk.Sample()
	if !ok || k != 250 || v != 1 {
		t.Fatalf("sample after deletions = (%d,%d,%v), want (250,1,true)", k, v, ok)
	}
}

func TestL0ZeroVector(t *testing.T) {
	spec := NewL0Spec(xrand.New(15), 10, 8, 6)
	sk := spec.NewL0()
	if _, _, ok := sk.Sample(); ok {
		t.Fatal("sampled from zero vector")
	}
	if !sk.IsZeroLikely() {
		t.Fatal("zero vector not detected")
	}
}

func TestL0MergeSamplesSum(t *testing.T) {
	spec := NewL0Spec(xrand.New(16), 17, 10, 8)
	a, b := spec.NewL0(), spec.NewL0()
	// a and b share heavy overlap that cancels; only key 42 survives.
	for i := uint64(1); i <= 200; i++ {
		a.Update(i, 1)
		if i != 42 {
			b.Update(i, -1)
		}
	}
	a.Merge(b)
	k, v, ok := a.Sample()
	if !ok || k != 42 || v != 1 {
		t.Fatalf("merged sample = (%d,%d,%v), want (42,1,true)", k, v, ok)
	}
}

func TestL0SuccessRate(t *testing.T) {
	// Decoding should succeed for the vast majority of random supports.
	fail := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		r := xrand.New(uint64(trial) + 1000)
		spec := NewL0Spec(r, 20, 12, 8)
		sk := spec.NewL0()
		n := 1 + r.Intn(2000)
		for i := 0; i < n; i++ {
			sk.Update(uint64(r.Intn(1<<20))+1, 1)
		}
		if _, _, ok := sk.Sample(); !ok {
			fail++
		}
	}
	if fail > 2 {
		t.Fatalf("L0 sampling failed %d/%d times", fail, trials)
	}
}

func TestL0Words(t *testing.T) {
	spec := NewL0Spec(xrand.New(17), 20, 8, 6)
	sk := spec.NewL0()
	if sk.Words() <= 0 {
		t.Fatal("Words must be positive")
	}
	// levels * rows * buckets * 4
	want := spec.Levels() * 6 * 16 * 4
	if sk.Words() != want {
		t.Fatalf("Words = %d, want %d", sk.Words(), want)
	}
}
