package sketch

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/unionfind"
	"repro/internal/xrand"
)

// AGM vertex-incidence sketches (footnote 1 of the paper). For vertex v
// the implicit vector x_v is indexed by unordered vertex pairs; for each
// incident edge {u,v}, x_v has entry +1 at Key(u,v) if v is the smaller
// endpoint and -1 otherwise. Summing x_v over a vertex set S cancels the
// entries of edges internal to S, leaving exactly the edges crossing the
// cut (S, V\S); an ℓ0-sample of the sum is therefore a uniform-ish sample
// of the cut edges — "we then sample an edge across that cut (if one
// exists, or determine that no such edge exists) with high probability".

// IncidenceSpec fixes the shared randomness for a bank of vertex
// sketches: `reps` independent ℓ0 specs, one consumed per adaptive use
// (e.g. per Boruvka round of spanning-forest extraction).
type IncidenceSpec struct {
	n     int
	reps  int
	specs []*L0Spec
}

// NewIncidenceSpec creates a spec for graphs on n < 2^29 vertices.
// reps is the number of adaptive uses supported; s and rows size the
// underlying s-sparse decoders.
func NewIncidenceSpec(r *xrand.RNG, n, reps, s, rows int) *IncidenceSpec {
	if n >= 1<<29 {
		panic("sketch: incidence sketches require n < 2^29")
	}
	if reps < 1 {
		reps = 1
	}
	universeLog := 2*log2ceil(n) + 1
	spec := &IncidenceSpec{n: n, reps: reps}
	for i := 0; i < reps; i++ {
		spec.specs = append(spec.specs, NewL0Spec(r.Split(uint64(i)+0x100), universeLog, s, rows))
	}
	return spec
}

// SpecAt returns the ℓ0 spec of repetition r (shared randomness for
// distributed constructions that build vertex sketches remotely, e.g.
// the MapReduce pipeline of Section 4.2).
func (spec *IncidenceSpec) SpecAt(r int) *L0Spec { return spec.specs[r] }

// Reps returns the number of repetitions.
func (spec *IncidenceSpec) Reps() int { return spec.reps }

func log2ceil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	if l == 0 {
		l = 1
	}
	return l
}

// Bank holds one sketch per (repetition, vertex).
type Bank struct {
	spec     *IncidenceSpec
	sketches [][]*L0 // [rep][vertex]
}

// NewBank returns a zeroed bank.
func (spec *IncidenceSpec) NewBank() *Bank {
	b := &Bank{spec: spec, sketches: make([][]*L0, spec.reps)}
	for r := 0; r < spec.reps; r++ {
		row := make([]*L0, spec.n)
		for v := range row {
			row[v] = spec.specs[r].NewL0()
		}
		b.sketches[r] = row
	}
	return b
}

// Words returns the total storage footprint in 64-bit words.
func (b *Bank) Words() int {
	w := 0
	for _, row := range b.sketches {
		for _, s := range row {
			w += s.Words()
		}
	}
	return w
}

// ReleaseTo hands every sketch column back to the arena's free lists and
// empties the bank. The bank must not be used afterwards; the next
// arena-fed build of the same spec reuses the columns. Sequential —
// release happens between builds, never inside a parallel region.
func (b *Bank) ReleaseTo(a *Arena) {
	for r, row := range b.sketches {
		spec := b.spec.specs[r]
		for _, s := range row {
			if s != nil {
				a.PutL0(spec, s)
			}
		}
		clear(row)
	}
	b.sketches = nil
}

// VertexWords returns the per-vertex footprint (one vertex, all reps).
func (b *Bank) VertexWords(v int) int {
	w := 0
	for _, row := range b.sketches {
		w += row[v].Words()
	}
	return w
}

// AddEdge inserts the undirected edge {u, v} into every repetition.
func (b *Bank) AddEdge(u, v int32) { b.update(u, v, 1) }

// RemoveEdge deletes the undirected edge {u, v} (linear sketches support
// deletions natively).
func (b *Bank) RemoveEdge(u, v int32) { b.update(u, v, -1) }

func (b *Bank) update(u, v int32, delta int64) {
	if u == v {
		panic("sketch: self loop")
	}
	key := graph.KeyOf(u, v)
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	// Hoist the per-edge invariants: the key reduction and the two field
	// deltas are shared across every repetition, and within a repetition
	// the lo and hi endpoint sketches share the fingerprint base, so one
	// window-table z^key serves both.
	keyMod := key % prime
	dLo := toField(delta)
	dHi := toField(-delta)
	for r := range b.sketches {
		zk := b.spec.specs[r].sspec.zpow.Pow(key)
		b.sketches[r][lo].updateRaw(keyMod, dLo, zk)
		b.sketches[r][hi].updateRaw(keyMod, dHi, zk)
	}
}

// AddEdgeBlock inserts a block of edges — the stream.BlockSweeper
// granule — into every repetition, one hoisted bank update per edge.
// Bit-identical to calling AddEdge per edge in order; panics on self
// loops like AddEdge.
func (b *Bank) AddEdgeBlock(edges []graph.Edge) {
	for i := range edges {
		b.update(edges[i].U, edges[i].V, 1)
	}
}

// MergeCut clones and merges the sketches of the vertex set at the given
// repetition; an ℓ0-sample of the result is an edge crossing the cut.
func (b *Bank) MergeCut(rep int, set []int) *L0 {
	if len(set) == 0 {
		panic("sketch: empty set")
	}
	acc := b.sketches[rep][set[0]].Clone()
	for _, v := range set[1:] {
		acc.Merge(b.sketches[rep][v])
	}
	return acc
}

// SampleCutEdge samples an edge crossing the cut (set, complement) using
// repetition rep. ok=false means the cut is (whp) empty or decoding
// failed.
func (b *Bank) SampleCutEdge(rep int, set []int) (u, v int32, ok bool) {
	key, _, sok := b.MergeCut(rep, set).Sample()
	if !sok {
		return 0, 0, false
	}
	u, v = graph.UnKey(key)
	return u, v, true
}

// SpanningForest extracts a spanning forest using Boruvka rounds; round i
// consumes repetition i of the bank (each repetition is used exactly once,
// preserving independence). It returns the forest edges and the final
// union-find. An error is returned if the bank has too few repetitions to
// finish (needs about log2(n) + 2).
func (b *Bank) SpanningForest() ([]graph.Edge, *unionfind.UF, error) {
	n := b.spec.n
	uf := unionfind.New(n)
	var forest []graph.Edge
	for rep := 0; rep < b.spec.reps; rep++ {
		if uf.Components() == 1 {
			return forest, uf, nil
		}
		comps := uf.Sets()
		merged := false
		type pick struct{ u, v int32 }
		var picks []pick
		// Walk components in sorted-representative order: when two
		// components sample edges whose unions conflict, which union
		// wins (and which edge joins the forest) depends on this order.
		reps := make([]int, 0, len(comps))
		//lint:ordered key collection, sorted immediately below
		for r := range comps {
			reps = append(reps, r)
		}
		sort.Ints(reps)
		for _, r := range reps {
			if u, v, ok := b.SampleCutEdge(rep, comps[r]); ok {
				picks = append(picks, pick{u, v})
			}
		}
		for _, p := range picks {
			if uf.Union(int(p.u), int(p.v)) {
				forest = append(forest, graph.Edge{U: p.u, V: p.v, W: 1})
				merged = true
			}
		}
		if !merged {
			// No component found an outgoing edge: remaining components
			// are (whp) genuinely isolated — done.
			return forest, uf, nil
		}
	}
	// Ran out of repetitions: check whether we actually finished.
	done := true
	//lint:ordered existence check: "any component still has a cut edge" is order-independent
	for _, members := range uf.Sets() {
		if u, v, ok := b.SampleCutEdge(b.spec.reps-1, members); ok && !uf.Same(int(u), int(v)) {
			done = false
			break
		}
	}
	if done {
		return forest, uf, nil
	}
	return forest, uf, fmt.Errorf("sketch: spanning forest incomplete after %d repetitions", b.spec.reps)
}
