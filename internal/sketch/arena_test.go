package sketch

import (
	"reflect"
	"testing"

	"repro/internal/xrand"
)

// applyUpdates feeds a deterministic update sequence into a sketch.
func applySSparseUpdates(sk *SSparse, seed uint64) {
	for i := 0; i < 200; i++ {
		sk.Update(uint64(i)*2654435761+seed+1, int64(1+i%3))
	}
}

func applyL0Updates(s *L0, seed uint64) {
	for i := 0; i < 200; i++ {
		s.Update(uint64(i)*0x9e3779b97f4a7c15+seed+1, int64(1-2*(i%2)))
	}
}

// TestArenaSSparseRoundTrip checks the Get/Put/Reset cycle against cold
// construction: a pooled sketch must be bit-identical to a fresh
// NewSSparse after the same update sequence, on the first Get (cold
// path) and again after a Put/Get round trip (recycled path).
func TestArenaSSparseRoundTrip(t *testing.T) {
	spec := NewSSparseSpec(xrand.New(11), 12, 8)
	a := NewArena()

	for round := uint64(0); round < 3; round++ {
		got := a.GetSSparse(spec)
		want := spec.NewSSparse()
		applySSparseUpdates(got, round)
		applySSparseUpdates(want, round)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: arena sketch differs from fresh sketch", round)
		}
		a.PutSSparse(spec, got) // recycled with dirty state for the next round
	}
}

// TestArenaL0RoundTrip is the same cycle for whole ℓ0 samplers.
func TestArenaL0RoundTrip(t *testing.T) {
	spec := NewL0Spec(xrand.New(13), 24, 12, 8)
	a := NewArena()

	for round := uint64(0); round < 3; round++ {
		got := a.GetL0(spec)
		want := spec.NewL0()
		applyL0Updates(got, round)
		applyL0Updates(want, round)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: arena sampler differs from fresh sampler", round)
		}
		a.PutL0(spec, got)
	}
}

// TestArenaCrossSpecPutPanics pins the ownership rule: returning a
// sketch to a pool keyed by a different spec must panic rather than let
// a later Get decode under the wrong hash functions.
func TestArenaCrossSpecPutPanics(t *testing.T) {
	t.Run("ssparse", func(t *testing.T) {
		specA := NewSSparseSpec(xrand.New(21), 12, 8)
		specB := NewSSparseSpec(xrand.New(22), 12, 8)
		a := NewArena()
		sk := a.GetSSparse(specA)
		defer func() {
			if recover() == nil {
				t.Fatal("cross-spec PutSSparse did not panic")
			}
		}()
		a.PutSSparse(specB, sk)
	})
	t.Run("l0", func(t *testing.T) {
		specA := NewL0Spec(xrand.New(23), 24, 12, 8)
		specB := NewL0Spec(xrand.New(24), 24, 12, 8)
		a := NewArena()
		s := a.GetL0(specA)
		defer func() {
			if recover() == nil {
				t.Fatal("cross-spec PutL0 did not panic")
			}
		}()
		a.PutL0(specB, s)
	})
}

// TestArenaBankBuildBitIdentity drives the per-shard sub-arena path
// under every worker count (the -race job runs this package): repeated
// arena-fed builds recycling through ReleaseTo must stay bit-identical
// to a cold BuildBank of the same spec and edges.
func TestArenaBankBuildBitIdentity(t *testing.T) {
	const n = 96
	edges := ringEdges(n)
	spec := NewIncidenceSpec(xrand.New(31), n, 6, 12, 8)
	cold := spec.BuildBank(edges, 1)

	a := NewArena()
	for _, workers := range []int{1, 2, 4} {
		for trial := 0; trial < 2; trial++ {
			got := spec.BuildBankArena(edges, workers, a)
			if !reflect.DeepEqual(cold, got) {
				t.Fatalf("workers=%d trial=%d: arena build differs from cold build", workers, trial)
			}
			got.ReleaseTo(a)
		}
		if a.RetainedWords() <= 0 {
			t.Fatalf("workers=%d: arena retained no capacity after ReleaseTo", workers)
		}
	}
}

// TestBankBuildArenaAllocsFlat asserts the allocation profile the arena
// exists for: once one build has populated the pool, a build+release
// cycle allocates only per-build bookkeeping (spines, bucket staging) —
// two orders of magnitude below the n·reps sketch allocations of a cold
// build.
func TestBankBuildArenaAllocsFlat(t *testing.T) {
	const n = 128
	edges := ringEdges(n)
	spec := NewIncidenceSpec(xrand.New(37), n, 6, 12, 8)

	a := NewArena()
	spec.BuildBankArena(edges, 1, a).ReleaseTo(a) // populate the pool

	cold := testing.AllocsPerRun(5, func() {
		spec.BuildBank(edges, 1)
	})
	warm := testing.AllocsPerRun(5, func() {
		spec.BuildBankArena(edges, 1, a).ReleaseTo(a)
	})
	// A cold build allocates at least one object per (vertex, repetition)
	// column; a warm build must be wholly independent of n·reps.
	if min := float64(n * spec.Reps()); cold < min {
		t.Fatalf("cold build allocs = %.0f, want >= %.0f (n·reps columns)", cold, min)
	}
	if warm > 64 {
		t.Fatalf("arena build allocs = %.0f, want <= 64 (column reuse must not allocate per vertex)", warm)
	}
}

// BenchmarkBankBuildArena measures steady-state arena builds against
// cold builds (the allocs/op columns are the point of the comparison).
func BenchmarkBankBuildArena(b *testing.B) {
	const n = 512
	edges := ringEdges(n)
	spec := NewIncidenceSpec(xrand.New(41), n, 10, 12, 8)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			spec.BuildBank(edges, 1)
		}
	})
	b.Run("arena", func(b *testing.B) {
		a := NewArena()
		spec.BuildBankArena(edges, 1, a).ReleaseTo(a)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			spec.BuildBankArena(edges, 1, a).ReleaseTo(a)
		}
	})
}
