package sketch

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

func ringEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, 0, 2*n)
	for v := 0; v < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32((v + 1) % n), W: 1})
	}
	for v := 0; v < n; v += 3 {
		edges = append(edges, graph.Edge{U: int32(v), V: int32((v + n/2) % n), W: 1})
	}
	return edges
}

// TestBankParallelBitIdentical is the sketch layer's half of the
// pipeline's determinism contract: the sharded construction must produce
// exactly the sequential bank, for any worker count.
func TestBankParallelBitIdentical(t *testing.T) {
	const n = 97
	spec := NewIncidenceSpec(xrand.New(7), n, 9, 12, 8)
	edges := ringEdges(n)

	seq := spec.NewBank()
	for _, e := range edges {
		seq.AddEdge(e.U, e.V)
	}
	g := graph.New(n)
	for _, e := range edges {
		g.MustAddEdge(int(e.U), int(e.V), e.W)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		par := spec.BuildBank(edges, workers)
		if !reflect.DeepEqual(seq.sketches, par.sketches) {
			t.Fatalf("workers=%d: parallel bank state differs from sequential", workers)
		}
		src := stream.NewEdgeStream(g)
		fromSrc := spec.BuildBankSource(src, workers)
		if !reflect.DeepEqual(seq.sketches, fromSrc.sketches) {
			t.Fatalf("workers=%d: source-built bank differs from sequential", workers)
		}
		if src.Passes() != 1 {
			t.Fatalf("workers=%d: bank build consumed %d passes, want 1", workers, src.Passes())
		}
	}
}

func TestBankParallelSpanningForest(t *testing.T) {
	const n = 64
	spec := NewIncidenceSpec(xrand.New(11), n, 10, 12, 8)
	edges := make([]graph.Edge, 0, n-1)
	for v := 0; v+1 < n; v++ {
		edges = append(edges, graph.Edge{U: int32(v), V: int32(v + 1), W: 1})
	}
	bank := spec.BuildBank(edges, 4)
	forest, uf, err := bank.SpanningForest()
	if err != nil {
		t.Fatal(err)
	}
	if uf.Components() != 1 {
		t.Fatalf("path graph split into %d components", uf.Components())
	}
	if len(forest) != n-1 {
		t.Fatalf("forest has %d edges, want %d", len(forest), n-1)
	}
}

func TestAddEdgesRejectsSelfLoop(t *testing.T) {
	spec := NewIncidenceSpec(xrand.New(3), 8, 2, 8, 4)
	bank := spec.NewBankParallel(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self loop")
		}
	}()
	bank.AddEdges([]graph.Edge{{U: 3, V: 3, W: 1}}, 2)
}
