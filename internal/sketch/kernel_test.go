package sketch

import (
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// The batched update kernel (fppow.go, updateRaw) must be bit-identical
// to the scalar square-and-multiply path it replaced: the field is
// exact, so z^key — and every sketch word downstream of it — is the
// same uint64 however it is computed. These tests pin that equality at
// every layer: the window table vs powm, the hoisted cell kernel vs the
// legacy per-cell Update, block vs scalar entry points, and bank builds
// across stream backends and worker counts.

func TestFpPowMatchesPowm(t *testing.T) {
	r := xrand.New(42)
	bases := []uint64{2, 3, prime - 1, prime / 2}
	for i := 0; i < 4; i++ {
		bases = append(bases, NewFingerprintBase(r))
	}
	boundary := []uint64{
		0, 1, 2, 15, 16, 17, 63, 64,
		1<<32 - 1, 1 << 32, 1<<32 + 1,
		prime - 2, prime - 1, prime, prime + 1,
		1 << 61, 1<<61 + 1, 1<<63 - 1, 1 << 63, 1<<64 - 1,
	}
	for _, z := range bases {
		zp := newFpPow(z)
		for e := uint64(0); e < 4096; e++ {
			if got, want := zp.Pow(e), powm(z, e); got != want {
				t.Fatalf("z=%d e=%d: table %d, powm %d", z, e, got, want)
			}
		}
		for _, e := range boundary {
			if got, want := zp.Pow(e), powm(z, e); got != want {
				t.Fatalf("z=%d boundary e=%d: table %d, powm %d", z, e, got, want)
			}
		}
		for i := 0; i < 2000; i++ {
			e := r.Uint64() & prime // 61-bit exponents: the key universe
			if got, want := zp.Pow(e), powm(z, e); got != want {
				t.Fatalf("z=%d random e=%d: table %d, powm %d", z, e, got, want)
			}
			e = r.Uint64() // full 64-bit exponents
			if got, want := zp.Pow(e), powm(z, e); got != want {
				t.Fatalf("z=%d random64 e=%d: table %d, powm %d", z, e, got, want)
			}
		}
	}
}

// legacySSparseUpdate is the pre-kernel SSparse.Update: per-cell scalar
// Update, each cell paying its own key reduction, toField and powm.
func legacySSparseUpdate(sk *SSparse, key uint64, delta int64) {
	spec := sk.spec
	for row := 0; row < spec.rows; row++ {
		b := spec.hashes[row].HashRange(key, spec.buckets)
		sk.cells[row*spec.buckets+b].Update(key, delta)
	}
}

// legacyL0Update is the pre-kernel L0.Update: per-level legacy SSparse
// updates under the scalar cell path.
func legacyL0Update(s *L0, key uint64, delta int64) {
	maxLevel := s.spec.levelHash.Level(key, s.spec.levels-1)
	for l := 0; l <= maxLevel; l++ {
		legacySSparseUpdate(s.levels[l], key, delta)
	}
}

// legacyBankUpdate is the pre-kernel Bank.update: per-repetition,
// per-endpoint legacy L0 updates.
func legacyBankUpdate(b *Bank, u, v int32, delta int64) {
	key := graph.KeyOf(u, v)
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	for r := range b.sketches {
		legacyL0Update(b.sketches[r][lo], key, delta)
		legacyL0Update(b.sketches[r][hi], key, -delta)
	}
}

func randomUpdates(r *xrand.RNG, n int) ([]uint64, []int64) {
	keys := make([]uint64, n)
	deltas := make([]int64, n)
	for i := range keys {
		switch r.Intn(4) {
		case 0:
			keys[i] = uint64(r.Intn(64)) // collision-heavy small keys
		case 1:
			keys[i] = r.Uint64() % (1 << 32)
		default:
			keys[i] = r.Uint64() % prime // full key universe
		}
		deltas[i] = int64(r.Intn(9)) - 4
		if deltas[i] == 0 {
			deltas[i] = 1
		}
	}
	return keys, deltas
}

func TestUpdateRawMatchesScalar(t *testing.T) {
	r := xrand.New(7)
	keys, deltas := randomUpdates(r, 600)

	// Bare cell: hoisted kernel vs the scalar Update reference.
	z := NewFingerprintBase(r)
	zp := newFpPow(z)
	scalar, hoisted := NewOneSparse(z), NewOneSparse(z)
	for i, k := range keys {
		scalar.Update(k, deltas[i])
		hoisted.updateRaw(k%prime, toField(deltas[i]), zp.Pow(k))
		if scalar != hoisted {
			t.Fatalf("OneSparse diverged after update %d: %+v vs %+v", i, scalar, hoisted)
		}
	}

	// SSparse: kernel Update vs the legacy per-cell path.
	sspec := NewSSparseSpec(r.Split(1), 8, 6)
	skNew, skOld := sspec.NewSSparse(), sspec.NewSSparse()
	for i, k := range keys {
		skNew.Update(k, deltas[i])
		legacySSparseUpdate(skOld, k, deltas[i])
	}
	if !reflect.DeepEqual(skNew.cells, skOld.cells) {
		t.Fatal("SSparse kernel path diverged from legacy per-cell path")
	}

	// L0: kernel Update vs the legacy per-level path.
	lspec := NewL0Spec(r.Split(2), 20, 8, 6)
	l0New, l0Old := lspec.NewL0(), lspec.NewL0()
	for i, k := range keys {
		l0New.Update(k, deltas[i])
		legacyL0Update(l0Old, k, deltas[i])
	}
	for l := range l0New.levels {
		if !reflect.DeepEqual(l0New.levels[l].cells, l0Old.levels[l].cells) {
			t.Fatalf("L0 level %d diverged from legacy path", l)
		}
	}

	// Bank: hoisted shared-z^key endpoint updates vs the legacy loop,
	// including deletions.
	ispec := NewIncidenceSpec(r.Split(3), 64, 4, 8, 6)
	bankNew, bankOld := ispec.NewBank(), ispec.NewBank()
	for i := 0; i < 300; i++ {
		u := int32(r.Intn(64))
		v := int32(r.Intn(64))
		if u == v {
			continue
		}
		delta := int64(1)
		if i%5 == 4 {
			delta = -1
		}
		bankNew.update(u, v, delta)
		legacyBankUpdate(bankOld, u, v, delta)
	}
	if !reflect.DeepEqual(bankNew.sketches, bankOld.sketches) {
		t.Fatal("Bank kernel path diverged from legacy per-endpoint path")
	}

	// UpdateRows: the multi-repetition helper vs per-row scalar updates.
	rows := make([]*L0, ispec.Reps())
	rowsOld := make([]*L0, ispec.Reps())
	for rep := range rows {
		rows[rep] = ispec.SpecAt(rep).NewL0()
		rowsOld[rep] = ispec.SpecAt(rep).NewL0()
	}
	for i, k := range keys[:200] {
		UpdateRows(rows, k, deltas[i])
		for rep := range rowsOld {
			legacyL0Update(rowsOld[rep], k, deltas[i])
		}
	}
	if !reflect.DeepEqual(rows, rowsOld) {
		t.Fatal("UpdateRows diverged from per-row legacy updates")
	}
}

func TestUpdateBlockMatchesScalar(t *testing.T) {
	r := xrand.New(11)
	keys, deltas := randomUpdates(r, 400)

	sspec := NewSSparseSpec(r.Split(1), 8, 6)
	skBlock, skScalar := sspec.NewSSparse(), sspec.NewSSparse()
	skBlock.UpdateBlock(keys, deltas)
	for i, k := range keys {
		skScalar.Update(k, deltas[i])
	}
	if !reflect.DeepEqual(skBlock.cells, skScalar.cells) {
		t.Fatal("SSparse.UpdateBlock diverged from scalar updates")
	}

	lspec := NewL0Spec(r.Split(2), 20, 8, 6)
	l0Block, l0Scalar := lspec.NewL0(), lspec.NewL0()
	l0Block.UpdateBlock(keys, deltas)
	for i, k := range keys {
		l0Scalar.Update(k, deltas[i])
	}
	for l := range l0Block.levels {
		if !reflect.DeepEqual(l0Block.levels[l].cells, l0Scalar.levels[l].cells) {
			t.Fatalf("L0.UpdateBlock level %d diverged from scalar updates", l)
		}
	}

	edges := ringEdges(96)
	ispec := NewIncidenceSpec(r.Split(3), 96, 4, 8, 6)
	bankBlock, bankScalar := ispec.NewBank(), ispec.NewBank()
	bankBlock.AddEdgeBlock(edges)
	for _, e := range edges {
		bankScalar.AddEdge(e.U, e.V)
	}
	if !reflect.DeepEqual(bankBlock.sketches, bankScalar.sketches) {
		t.Fatal("Bank.AddEdgeBlock diverged from per-edge AddEdge")
	}
}

func TestUpdateBlockLengthMismatchPanics(t *testing.T) {
	r := xrand.New(13)
	sk := NewSSparseSpec(r, 4, 3).NewSSparse()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	sk.UpdateBlock([]uint64{1, 2}, []int64{1})
}

// TestBankSourceBlockEquivalence pins the bank-build block path across
// every file/memory backend and worker count against the sequential
// per-edge reference: one bank state, however the edges arrive.
func TestBankSourceBlockEquivalence(t *testing.T) {
	const n = 80
	g := graph.GNM(n, 400, graph.WeightConfig{}, 99)
	ref := NewIncidenceSpec(xrand.New(17), n, 4, 8, 6)
	want := ref.NewBank()
	for _, e := range g.Edges() {
		want.AddEdge(e.U, e.V)
	}

	dir := t.TempDir()
	mem := stream.NewEdgeStream(g)
	sources := map[string]func() stream.Source{
		"memory": func() stream.Source { return stream.NewEdgeStream(g) },
	}
	rbg1 := filepath.Join(dir, "g.rbg1")
	if err := stream.WriteBinaryFile(rbg1, mem); err != nil {
		t.Fatal(err)
	}
	sources["rbg1"] = func() stream.Source {
		src, err := stream.OpenBinary(rbg1)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}
	rbg2 := filepath.Join(dir, "g.rbg2")
	if err := stream.WriteBinaryFile2(rbg2, mem); err != nil {
		t.Fatal(err)
	}
	sources["rbg2"] = func() stream.Source {
		src, err := stream.OpenBinary(rbg2)
		if err != nil {
			t.Fatal(err)
		}
		return src
	}

	names := make([]string, 0, len(sources))
	//lint:ordered key collection, sorted immediately below
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, workers := range []int{1, 2, 3, 4} {
			spec := NewIncidenceSpec(xrand.New(17), n, 4, 8, 6)
			got := spec.BuildBankSource(sources[name](), workers)
			if !reflect.DeepEqual(got.sketches, want.sketches) {
				t.Errorf("%s workers=%d: bank diverged from sequential AddEdge reference", name, workers)
			}
		}
	}
}

// legacyRecover is the pre-accumulator SSparse.Recover: a per-decode
// map plus a final sort, kept as the behavioral reference.
func legacyRecover(sk *SSparse) (keys []uint64, values []int64, ok bool) {
	spec := sk.spec
	found := make(map[uint64]int64)
	corrupt := false
	for row := 0; row < spec.rows; row++ {
		for b := 0; b < spec.buckets; b++ {
			cell := &sk.cells[row*spec.buckets+b]
			if cell.IsZero() {
				continue
			}
			k, v, cok := cell.Recover()
			if !cok {
				corrupt = true
				continue
			}
			if prev, seen := found[k]; seen && prev != v {
				return nil, nil, false
			}
			found[k] = v
		}
	}
	if len(found) == 0 {
		return nil, nil, !corrupt
	}
	if len(found) > spec.s {
		return nil, nil, false
	}
	if corrupt {
		check := spec.NewSSparse()
		for k, v := range found {
			check.Update(k, v)
		}
		for i := range sk.cells {
			if sk.cells[i] != check.cells[i] {
				return nil, nil, false
			}
		}
	}
	keys = make([]uint64, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	values = make([]int64, len(keys))
	for i, k := range keys {
		values[i] = found[k]
	}
	return keys, values, true
}

func TestRecoverMatchesLegacyMapDecode(t *testing.T) {
	r := xrand.New(23)
	for trial := 0; trial < 200; trial++ {
		spec := NewSSparseSpec(r.Split(uint64(trial)), 8, 5)
		sk := spec.NewSSparse()
		support := r.Intn(20) // sparse, boundary, and overloaded decodes
		for i := 0; i < support; i++ {
			sk.Update(r.Uint64()%prime, int64(r.Intn(7))-3+1)
		}
		gk, gv, gok := sk.Recover()
		wk, wv, wok := legacyRecover(sk)
		if gok != wok || !reflect.DeepEqual(gk, wk) || !reflect.DeepEqual(gv, wv) {
			t.Fatalf("trial %d: Recover (%v %v %v) != legacy (%v %v %v)",
				trial, gk, gv, gok, wk, wv, wok)
		}
	}
}

func TestRecoverAccum(t *testing.T) {
	var a recoverAccum
	if a.add(30, 3) || a.add(10, 1) || a.add(20, -2) {
		t.Fatal("unexpected conflict on fresh keys")
	}
	if a.add(20, -2) {
		t.Fatal("re-adding an identical pair must not conflict")
	}
	if !a.add(20, 5) {
		t.Fatal("same key, different value must conflict")
	}
	wantK := []uint64{10, 20, 30}
	wantV := []int64{1, -2, 3}
	if !reflect.DeepEqual(a.keys, wantK) || !reflect.DeepEqual(a.vals, wantV) {
		t.Fatalf("accumulator not key-sorted: %v %v", a.keys, a.vals)
	}
	putRecoverAccum(&a)
	b := getRecoverAccum()
	if len(b.keys) != 0 || len(b.vals) != 0 {
		t.Fatal("pooled accumulator returned non-empty")
	}
}

// TestUpdatePathsAllocationFlat asserts the steady-state update kernel
// never touches the allocator, at every entry point.
func TestUpdatePathsAllocationFlat(t *testing.T) {
	r := xrand.New(31)
	sspec := NewSSparseSpec(r.Split(1), 8, 6)
	sk := sspec.NewSSparse()
	lspec := NewL0Spec(r.Split(2), 20, 8, 6)
	l0 := lspec.NewL0()
	ispec := NewIncidenceSpec(r.Split(3), 64, 4, 8, 6)
	bank := ispec.NewBank()
	edges := ringEdges(64)
	keys, deltas := randomUpdates(r.Split(4), 128)

	cases := []struct {
		name string
		fn   func()
	}{
		{"SSparse.Update", func() { sk.Update(keys[0], 1) }},
		{"SSparse.UpdateBlock", func() { sk.UpdateBlock(keys, deltas) }},
		{"L0.Update", func() { l0.Update(keys[1], 1) }},
		{"L0.UpdateBlock", func() { l0.UpdateBlock(keys, deltas) }},
		{"Bank.AddEdge", func() { bank.AddEdge(0, 1) }},
		{"Bank.AddEdgeBlock", func() { bank.AddEdgeBlock(edges) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(10, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

// mul128Reference is the retired 32-bit-limb schoolbook product, kept
// as the cross-check for the bits.Mul64 replacement.
func mul128Reference(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid1 := t & mask
	c1 := t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi = aHi*bHi + c1 + (t >> 32)
	return hi, lo
}

// mulBoundaries are operands at the 32/61/64-bit edges where a limb
// carry bug would surface.
var mulBoundaries = []uint64{
	0, 1, 2,
	1<<32 - 1, 1 << 32, 1<<32 + 1,
	prime - 1, prime, prime + 1,
	1<<63 - 1, 1 << 63, 1<<64 - 1,
}

func TestMul128MatchesReference(t *testing.T) {
	for _, a := range mulBoundaries {
		for _, b := range mulBoundaries {
			hi, lo := mul128(a, b)
			rhi, rlo := mul128Reference(a, b)
			if hi != rhi || lo != rlo {
				t.Fatalf("mul128(%d, %d) = (%d, %d), reference (%d, %d)", a, b, hi, lo, rhi, rlo)
			}
		}
	}
	r := xrand.New(47)
	for i := 0; i < 100000; i++ {
		a, b := r.Uint64(), r.Uint64()
		hi, lo := mul128(a, b)
		rhi, rlo := mul128Reference(a, b)
		if hi != rhi || lo != rlo {
			t.Fatalf("mul128(%d, %d) = (%d, %d), reference (%d, %d)", a, b, hi, lo, rhi, rlo)
		}
	}
}

func FuzzMul128(f *testing.F) {
	for _, a := range mulBoundaries {
		f.Add(a, a^0x9e3779b97f4a7c15)
	}
	f.Fuzz(func(t *testing.T, a, b uint64) {
		hi, lo := mul128(a, b)
		rhi, rlo := mul128Reference(a, b)
		if hi != rhi || lo != rlo {
			t.Fatalf("mul128(%d, %d) = (%d, %d), reference (%d, %d)", a, b, hi, lo, rhi, rlo)
		}
	})
}

func TestFpPowWindowGeometry(t *testing.T) {
	// The table must cover any uint64 exponent: windows × bits = 64.
	if powWindows*powWindowBits != 64 {
		t.Fatalf("window geometry %d×%d does not cover 64 bits", powWindows, powWindowBits)
	}
}
