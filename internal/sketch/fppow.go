package sketch

// Fixed-base windowed exponentiation for fingerprint bases (DESIGN.md
// §15). Every cell of an SSparse, every level of an L0, and the two
// endpoint rows of an incidence-bank update share one fingerprint base
// z, and the update path needs z^key per (key, delta) — previously a
// full square-and-multiply (~2·61 mulm) per *cell*. A 4-bit-window
// table of powers of z collapses that to at most one table lookup and
// one mulm per non-zero exponent digit (≤ 15 multiplies for the ≤
// 61-bit keys the sketches accept), computed once per update and shared
// by every cell through updateRaw.
//
// Exactness: GF(2^61−1) arithmetic is exact and mulm always returns the
// canonical representative < p, so z^e is the same field element — the
// same uint64 — however the product is associated. Table entries are
// built by the same mulm the scalar powm uses, and fpPow.Pow is pinned
// bit-identical to powm by TestFpPowMatchesPowm (exhaustive small
// exponents plus randomized and boundary 61/64-bit ones).

const (
	powWindowBits = 4
	powWindowSize = 1 << powWindowBits
	// powWindows covers any uint64 exponent: ceil(64/powWindowBits).
	powWindows = 64 / powWindowBits
)

// fpPow is the fixed-base window table for one fingerprint base:
// win[w][d] = z^(d · 2^(4w)) mod p.
type fpPow struct {
	win [powWindows][powWindowSize]uint64
}

// newFpPow builds the table for base z with powWindows·(powWindowSize−1)
// mulm operations at construction time.
func newFpPow(z uint64) *fpPow {
	t := &fpPow{}
	base := z % prime // z^(2^(4w)) for the current window
	for w := 0; w < powWindows; w++ {
		t.win[w][0] = 1
		for d := 1; d < powWindowSize; d++ {
			t.win[w][d] = mulm(t.win[w][d-1], base)
		}
		base = mulm(t.win[w][powWindowSize-1], base) // base^16
	}
	return t
}

// Pow returns z^e mod p, bit-identical to powm(z, e) for every uint64
// e, in at most powWindows multiplies (zero digits contribute a factor
// of 1 and are skipped).
func (t *fpPow) Pow(e uint64) uint64 {
	r := uint64(1)
	for w := 0; e != 0; w++ {
		if d := e & (powWindowSize - 1); d != 0 {
			r = mulm(r, t.win[w][d])
		}
		e >>= powWindowBits
	}
	return r
}
