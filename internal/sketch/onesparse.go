// Package sketch implements the linear-sketching substrate of the paper:
// exact 1-sparse recovery, s-sparse recovery, ℓ0-samplers supporting
// insertions and deletions, and AGM-style vertex-incidence sketches whose
// linear combination over a vertex set samples edges across the cut
// (footnote 1 of the paper; Ahn–Guha–McGregor SODA'12 / PODS'12).
//
// All sketches are linear: Update(key, Δ) is a linear map of the implicit
// vector, so Merge(a, b) equals the sketch of the vector sum. Keys are
// opaque uint64 identifiers < 2^61-1 (graph pair keys with n < 2^29 fit).
package sketch

import "repro/internal/xrand"

const prime = xrand.MersennePrime61

// mod arithmetic helpers over GF(2^61-1).
func addm(a, b uint64) uint64 {
	s := a + b
	if s >= prime {
		s -= prime
	}
	return s
}

func subm(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + prime - b
}

func mulm(a, b uint64) uint64 {
	hi, lo := mul128(a, b)
	r := (lo & prime) + ((lo >> 61) | (hi << 3 & prime)) + (hi >> 58)
	r = (r & prime) + (r >> 61)
	if r >= prime {
		r -= prime
	}
	return r
}

func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid1 := t & mask
	c1 := t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi = aHi*bHi + c1 + (t >> 32)
	return hi, lo
}

// powm computes a^e mod prime.
func powm(a, e uint64) uint64 {
	r := uint64(1)
	a %= prime
	for e > 0 {
		if e&1 == 1 {
			r = mulm(r, a)
		}
		a = mulm(a, a)
		e >>= 1
	}
	return r
}

// invm computes the multiplicative inverse mod prime (prime is prime, so
// a^(p-2)).
func invm(a uint64) uint64 { return powm(a, prime-2) }

// toField maps a signed delta into the field.
func toField(delta int64) uint64 {
	if delta >= 0 {
		return uint64(delta) % prime
	}
	return prime - uint64(-delta)%prime
}

// OneSparse is an exact 1-sparse recovery cell. It maintains three field
// values — the sum of values, the sum of key·value, and a fingerprint
// Σ value·z^key — for the implicit vector it has absorbed. If the vector
// is exactly 1-sparse the (key, value) pair is recovered exactly; if it is
// not, recovery fails (detected by the fingerprint) except with
// probability < 2^-40 over the choice of z.
type OneSparse struct {
	z       uint64 // fingerprint base, shared across mergeable cells
	sumVal  uint64 // Σ value (mod p)
	sumKV   uint64 // Σ key·value (mod p)
	fingerp uint64 // Σ value·z^key (mod p)
}

// NewOneSparse creates a cell with fingerprint base z (draw once per
// sketch family with NewFingerprintBase).
func NewOneSparse(z uint64) OneSparse { return OneSparse{z: z} }

// NewFingerprintBase draws a random fingerprint base.
func NewFingerprintBase(r *xrand.RNG) uint64 {
	for {
		z := r.Uint64() & prime
		if z > 1 && z < prime {
			return z
		}
	}
}

// Update adds delta to the implicit vector at key. Keys must be < 2^61-1.
func (c *OneSparse) Update(key uint64, delta int64) {
	d := toField(delta)
	c.sumVal = addm(c.sumVal, d)
	c.sumKV = addm(c.sumKV, mulm(key%prime, d))
	c.fingerp = addm(c.fingerp, mulm(d, powm(c.z, key)))
}

// Merge absorbs another cell (must share the same z).
func (c *OneSparse) Merge(o OneSparse) {
	if c.z != o.z {
		panic("sketch: merging OneSparse cells with different fingerprint bases")
	}
	c.sumVal = addm(c.sumVal, o.sumVal)
	c.sumKV = addm(c.sumKV, o.sumKV)
	c.fingerp = addm(c.fingerp, o.fingerp)
}

// IsZero reports whether the cell looks like the zero vector.
func (c *OneSparse) IsZero() bool {
	return c.sumVal == 0 && c.sumKV == 0 && c.fingerp == 0
}

// Recover attempts exact 1-sparse recovery. On success it returns the key
// and the signed value. Values are interpreted in (-p/2, p/2): sketches in
// this repository always hold small counts, so the embedding is faithful.
func (c *OneSparse) Recover() (key uint64, value int64, ok bool) {
	if c.sumVal == 0 {
		return 0, 0, false // zero vector, or value-sum cancellation
	}
	k := mulm(c.sumKV, invm(c.sumVal))
	// Verify the fingerprint: value·z^k must equal the stored fingerprint.
	if mulm(c.sumVal, powm(c.z, k)) != c.fingerp {
		return 0, 0, false
	}
	v := c.sumVal
	if v > prime/2 {
		return k, -int64(prime - v), true
	}
	return k, int64(v), true
}
