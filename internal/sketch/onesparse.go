// Package sketch implements the linear-sketching substrate of the paper:
// exact 1-sparse recovery, s-sparse recovery, ℓ0-samplers supporting
// insertions and deletions, and AGM-style vertex-incidence sketches whose
// linear combination over a vertex set samples edges across the cut
// (footnote 1 of the paper; Ahn–Guha–McGregor SODA'12 / PODS'12).
//
// All sketches are linear: Update(key, Δ) is a linear map of the implicit
// vector, so Merge(a, b) equals the sketch of the vector sum. Keys are
// opaque uint64 identifiers < 2^61-1 (graph pair keys with n < 2^29 fit).
package sketch

import (
	"math/bits"

	"repro/internal/xrand"
)

const prime = xrand.MersennePrime61

// mod arithmetic helpers over GF(2^61-1).
func addm(a, b uint64) uint64 {
	s := a + b
	if s >= prime {
		s -= prime
	}
	return s
}

func subm(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + prime - b
}

func mulm(a, b uint64) uint64 {
	hi, lo := mul128(a, b)
	r := (lo & prime) + ((lo >> 61) | (hi << 3 & prime)) + (hi >> 58)
	r = (r & prime) + (r >> 61)
	if r >= prime {
		r -= prime
	}
	return r
}

// mul128 returns the exact 128-bit product of a and b. bits.Mul64
// compiles to the single MUL instruction; the retired 32-bit-limb
// schoolbook version lives on as mul128Reference in the tests, which
// pin exact (hi, lo) equality on boundary operands and under fuzzing.
func mul128(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}

// powm computes a^e mod prime by square-and-multiply (~2·61 mulm). It
// is the scalar reference: hot paths with a fixed base use an fpPow
// window table instead (bit-identical, see fppow.go), which is what the
// fieldhot analyzer enforces.
func powm(a, e uint64) uint64 {
	r := uint64(1)
	a %= prime
	for e > 0 {
		if e&1 == 1 {
			r = mulm(r, a)
		}
		a = mulm(a, a)
		e >>= 1
	}
	return r
}

// invm computes the multiplicative inverse mod prime (prime is prime, so
// a^(p-2)).
func invm(a uint64) uint64 {
	//lint:fieldhot the base varies per call, so no fixed-base window table applies; cost is per decoded non-zero cell, not per update
	return powm(a, prime-2)
}

// toField maps a signed delta into the field.
func toField(delta int64) uint64 {
	if delta >= 0 {
		return uint64(delta) % prime
	}
	return prime - uint64(-delta)%prime
}

// OneSparse is an exact 1-sparse recovery cell. It maintains three field
// values — the sum of values, the sum of key·value, and a fingerprint
// Σ value·z^key — for the implicit vector it has absorbed. If the vector
// is exactly 1-sparse the (key, value) pair is recovered exactly; if it is
// not, recovery fails (detected by the fingerprint) except with
// probability < 2^-40 over the choice of z.
type OneSparse struct {
	z       uint64 // fingerprint base, shared across mergeable cells
	sumVal  uint64 // Σ value (mod p)
	sumKV   uint64 // Σ key·value (mod p)
	fingerp uint64 // Σ value·z^key (mod p)
}

// NewOneSparse creates a cell with fingerprint base z (draw once per
// sketch family with NewFingerprintBase).
func NewOneSparse(z uint64) OneSparse { return OneSparse{z: z} }

// NewFingerprintBase draws a random fingerprint base.
func NewFingerprintBase(r *xrand.RNG) uint64 {
	for {
		z := r.Uint64() & prime
		if z > 1 && z < prime {
			return z
		}
	}
}

// Update adds delta to the implicit vector at key. Keys must be < 2^61-1.
//
// This is the scalar entry point for bare cells, paying a full powm per
// call; spec-fed paths (SSparse, L0, Bank) hoist key%prime, toField and
// z^key once per update and fan out through updateRaw. Both paths are
// bit-identical, pinned by TestUpdateRawMatchesScalar.
func (c *OneSparse) Update(key uint64, delta int64) {
	d := toField(delta)
	//lint:fieldhot scalar reference entry point for bare cells; spec-fed updates hoist z^key through the window table + updateRaw (bit-identity pinned by TestUpdateRawMatchesScalar)
	c.updateRaw(key%prime, d, powm(c.z, key))
}

// updateRaw is the hoisted update kernel: the caller has computed
// keyMod = key % prime, d = toField(delta) and zPowKey = z^key once and
// shares them across every cell that absorbs the update (all cells of
// an SSparse row set, all levels of an L0, both endpoint rows of a bank
// edge). Two mulm and three addm per cell.
func (c *OneSparse) updateRaw(keyMod, d, zPowKey uint64) {
	c.sumVal = addm(c.sumVal, d)
	c.sumKV = addm(c.sumKV, mulm(keyMod, d))
	c.fingerp = addm(c.fingerp, mulm(d, zPowKey))
}

// Merge absorbs another cell (must share the same z).
func (c *OneSparse) Merge(o OneSparse) {
	if c.z != o.z {
		panic("sketch: merging OneSparse cells with different fingerprint bases")
	}
	c.sumVal = addm(c.sumVal, o.sumVal)
	c.sumKV = addm(c.sumKV, o.sumKV)
	c.fingerp = addm(c.fingerp, o.fingerp)
}

// IsZero reports whether the cell looks like the zero vector.
func (c *OneSparse) IsZero() bool {
	return c.sumVal == 0 && c.sumKV == 0 && c.fingerp == 0
}

// Recover attempts exact 1-sparse recovery. On success it returns the key
// and the signed value. Values are interpreted in (-p/2, p/2): sketches in
// this repository always hold small counts, so the embedding is faithful.
func (c *OneSparse) Recover() (key uint64, value int64, ok bool) {
	if c.sumVal == 0 {
		return 0, 0, false // zero vector, or value-sum cancellation
	}
	k := mulm(c.sumKV, invm(c.sumVal))
	// Verify the fingerprint: value·z^k must equal the stored fingerprint.
	//lint:fieldhot bare-cell decode reference; spec-fed decodes (SSparse.Recover) use recoverFast with the spec's window table, bit-identical
	if mulm(c.sumVal, powm(c.z, k)) != c.fingerp {
		return 0, 0, false
	}
	v := c.sumVal
	if v > prime/2 {
		return k, -int64(prime - v), true
	}
	return k, int64(v), true
}

// recoverFast is Recover with z^k computed through the spec's
// fixed-base window table instead of square-and-multiply. The field is
// exact, so the verified fingerprint — and hence the accept/reject
// decision and the returned pair — is bit-identical to Recover.
func (c *OneSparse) recoverFast(zp *fpPow) (key uint64, value int64, ok bool) {
	if c.sumVal == 0 {
		return 0, 0, false // zero vector, or value-sum cancellation
	}
	k := mulm(c.sumKV, invm(c.sumVal))
	if mulm(c.sumVal, zp.Pow(k)) != c.fingerp {
		return 0, 0, false
	}
	v := c.sumVal
	if v > prime/2 {
		return k, -int64(prime - v), true
	}
	return k, int64(v), true
}
