package sketch

import (
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/stream"
)

// Parallel incidence-sketch construction (DESIGN.md, "Parallel
// pipeline"). The bank is sharded by vertex range: every vertex's sketch
// column is owned by exactly one worker; a single sequential scan
// buckets each edge's two endpoint updates by owning shard and the
// workers then apply only their own bucket (the sketch updates dominate
// the bucketing scan by orders of magnitude). Because the sketches are
// linear (integer counters), the final bank state is exactly the state
// the sequential AddEdge loop produces, for any worker count —
// per-vertex update order is edge order in both cases.

// NewBankParallel returns a zeroed bank, allocating the per-vertex sketch
// columns across workers (0 = GOMAXPROCS, 1 = sequential). Allocation is
// the dominant cost of a bank at Õ(polylog) words per (vertex,
// repetition) pair, which is why it shards alongside the updates.
func (spec *IncidenceSpec) NewBankParallel(workers int) *Bank {
	b := &Bank{spec: spec, sketches: make([][]*L0, spec.reps)}
	for r := 0; r < spec.reps; r++ {
		b.sketches[r] = make([]*L0, spec.n)
	}
	parallel.ForEachShard(workers, spec.n, func(_ int, sh parallel.Range) {
		for v := sh.Lo; v < sh.Hi; v++ {
			for r := 0; r < spec.reps; r++ {
				b.sketches[r][v] = spec.specs[r].NewL0()
			}
		}
	})
	return b
}

// Reset zeroes every sketch column in place, sharded by vertex range
// like NewBankParallel, so a bank can be rebuilt for a new edge set
// without reallocating its Õ(n·polylog) words of column state. This is
// the reuse answer to the allocation audit of the bank constructor: the
// per-(vertex, repetition) L0 allocations dominate a bank build, and
// they are exactly what Reset retains. A Reset bank is indistinguishable
// from a fresh NewBankParallel bank of the same spec.
func (b *Bank) Reset(workers int) {
	parallel.ForEachShard(workers, b.spec.n, func(_ int, sh parallel.Range) {
		for v := sh.Lo; v < sh.Hi; v++ {
			for r := 0; r < b.spec.reps; r++ {
				b.sketches[r][v].Reset()
			}
		}
	})
}

// AddEdges inserts every edge into the bank with the work sharded by
// vertex range across workers. A single O(m) scan buckets the two
// endpoint updates of each edge by owning shard; workers then apply only
// their own bucket, so total work stays O(m) plus the sketch updates
// regardless of worker count. Within a bucket updates keep edge order,
// so the result is bit-identical to calling AddEdge(e.U, e.V) for each
// edge in order, for any worker count. Panics on self loops, like
// AddEdge.
func (b *Bank) AddEdges(edges []graph.Edge, workers int) {
	shards := parallel.Shards(b.spec.n, parallel.Workers(workers))
	if len(shards) <= 1 {
		// Sequential: skip the bucketing pass entirely.
		b.AddEdgeBlock(edges)
		return
	}
	shardOf := make([]int32, b.spec.n)
	for si, sh := range shards {
		for v := sh.Lo; v < sh.Hi; v++ {
			shardOf[v] = int32(si)
		}
	}
	buckets := make([][]bankUpd, len(shards))
	for _, e := range edges {
		if e.U == e.V {
			panic("sketch: self loop")
		}
		key := graph.KeyOf(e.U, e.V)
		lo, hi := e.U, e.V
		if lo > hi {
			lo, hi = hi, lo
		}
		buckets[shardOf[lo]] = append(buckets[shardOf[lo]], bankUpd{v: lo, delta: 1, key: key})
		buckets[shardOf[hi]] = append(buckets[shardOf[hi]], bankUpd{v: hi, delta: -1, key: key})
	}
	b.applyBuckets(workers, buckets)
}

// bankUpd is one endpoint update routed to its owning vertex shard.
type bankUpd struct {
	v     int32
	delta int64
	key   uint64
}

// applyBuckets has each shard's owner absorb its own updates in order.
func (b *Bank) applyBuckets(workers int, buckets [][]bankUpd) {
	parallel.Run(workers, len(buckets), func(si int) {
		b.absorb(buckets[si])
	})
}

// absorb applies one shard's routed endpoint updates in order through
// the hoisted kernel: per update the key reduction and field delta are
// computed once, and each repetition evaluates z^key once through its
// window table instead of a square-and-multiply per cell. Bit-identical
// to the per-endpoint L0.Update loop it replaces.
func (b *Bank) absorb(upds []bankUpd) {
	for i := range upds {
		u := &upds[i]
		keyMod := u.key % prime
		d := toField(u.delta)
		for r := range b.sketches {
			zk := b.spec.specs[r].sspec.zpow.Pow(u.key)
			b.sketches[r][u.v].updateRaw(keyMod, d, zk)
		}
	}
}

// bankSourceChunk is the staging granule of AddEdgesSource: updates are
// bucketed and applied per chunk of this many edges, so a source-fed
// build holds O(1) staged records no matter how long the stream is.
const bankSourceChunk = 1 << 14

// AddEdgesSource inserts every edge served by src into the bank — one
// metered pass, since the linear sketches are exactly the one-pass
// structure of the paper — with the updates sharded by vertex range
// across workers like AddEdges. The scan buckets updates by owning
// shard in constant-size chunks and applies each chunk before staging
// the next, so the staged state is O(1) in m (the edges are never
// resident). Linear sketches make chunked application equal to one-shot
// application — per-vertex update order is edge order either way — so
// the result is bit-identical to AddEdges over the same edge sequence
// for any worker count.
func (b *Bank) AddEdgesSource(src stream.Source, workers int) {
	shards := parallel.Shards(b.spec.n, parallel.Workers(workers))
	if len(shards) <= 1 {
		// Sequential: ride the backend's native blocks straight into the
		// bank, skipping the bucketing pass entirely.
		stream.ForEachBlocks(src, func(_ int, edges []graph.Edge) bool {
			b.AddEdgeBlock(edges)
			return true
		})
		return
	}
	shardOf := make([]int32, b.spec.n)
	for si, sh := range shards {
		for v := sh.Lo; v < sh.Hi; v++ {
			shardOf[v] = int32(si)
		}
	}
	buckets := make([][]bankUpd, len(shards))
	staged := 0
	flush := func() {
		b.applyBuckets(workers, buckets)
		for si := range buckets {
			buckets[si] = buckets[si][:0]
		}
		staged = 0
	}
	stream.ForEachBlocks(src, func(_ int, edges []graph.Edge) bool {
		for i := range edges {
			e := edges[i]
			if e.U == e.V {
				panic("sketch: self loop")
			}
			key := graph.KeyOf(e.U, e.V)
			lo, hi := e.U, e.V
			if lo > hi {
				lo, hi = hi, lo
			}
			buckets[shardOf[lo]] = append(buckets[shardOf[lo]], bankUpd{v: lo, delta: 1, key: key})
			buckets[shardOf[hi]] = append(buckets[shardOf[hi]], bankUpd{v: hi, delta: -1, key: key})
			if staged++; staged == bankSourceChunk {
				flush()
			}
		}
		return true
	})
	flush()
}

// NewBankParallelArena is NewBankParallel with the per-vertex columns
// drawn from an arena (nil = plain allocation). The free lists are
// pre-split into per-shard sub-arenas sequentially up front — exactly
// the pre-split-RNG discipline of the parallel pipeline — so workers
// never share a pool; leftovers drain back after the region. A pooled
// column is Reset to the zero state a fresh one is constructed in, so
// the bank is indistinguishable from a cold NewBankParallel bank.
func (spec *IncidenceSpec) NewBankParallelArena(workers int, a *Arena) *Bank {
	if a == nil {
		return spec.NewBankParallel(workers)
	}
	b := &Bank{spec: spec, sketches: make([][]*L0, spec.reps)}
	for r := 0; r < spec.reps; r++ {
		b.sketches[r] = make([]*L0, spec.n)
	}
	shards := parallel.Shards(spec.n, parallel.Workers(workers))
	counts := make([]int, len(shards))
	subs := make([]*Arena, len(shards))
	for si, sh := range shards {
		counts[si] = sh.Hi - sh.Lo
		subs[si] = a.Shard(si)
	}
	for r := 0; r < spec.reps; r++ {
		a.PresplitL0(spec.specs[r], counts)
	}
	parallel.Run(workers, len(shards), func(si int) {
		sh := shards[si]
		for v := sh.Lo; v < sh.Hi; v++ {
			for r := 0; r < spec.reps; r++ {
				b.sketches[r][v] = subs[si].GetL0(spec.specs[r])
			}
		}
	})
	a.Drain()
	return b
}

// BuildBank allocates a bank and inserts the edges, both sharded by
// vertex range across workers — the one-round distributed construction of
// Section 4.2 collapsed onto a shared-memory pool.
func (spec *IncidenceSpec) BuildBank(edges []graph.Edge, workers int) *Bank {
	return spec.BuildBankArena(edges, workers, nil)
}

// BuildBankArena is BuildBank with the column allocations drawn from an
// arena (nil = plain allocation).
func (spec *IncidenceSpec) BuildBankArena(edges []graph.Edge, workers int, a *Arena) *Bank {
	b := spec.NewBankParallelArena(workers, a)
	b.AddEdges(edges, workers)
	return b
}

// BuildBankSource allocates a bank and inserts the edges served by a
// Source — the distributed construction driven by any access backend.
func (spec *IncidenceSpec) BuildBankSource(src stream.Source, workers int) *Bank {
	return spec.BuildBankSourceArena(src, workers, nil)
}

// BuildBankSourceArena is BuildBankSource with the column allocations
// drawn from an arena (nil = plain allocation).
func (spec *IncidenceSpec) BuildBankSourceArena(src stream.Source, workers int, a *Arena) *Bank {
	b := spec.NewBankParallelArena(workers, a)
	b.AddEdgesSource(src, workers)
	return b
}
