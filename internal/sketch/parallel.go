package sketch

import (
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Parallel incidence-sketch construction (DESIGN.md, "Parallel
// pipeline"). The bank is sharded by vertex range: every vertex's sketch
// column is owned by exactly one worker; a single sequential scan
// buckets each edge's two endpoint updates by owning shard and the
// workers then apply only their own bucket (the sketch updates dominate
// the bucketing scan by orders of magnitude). Because the sketches are
// linear (integer counters), the final bank state is exactly the state
// the sequential AddEdge loop produces, for any worker count —
// per-vertex update order is edge order in both cases.

// NewBankParallel returns a zeroed bank, allocating the per-vertex sketch
// columns across workers (0 = GOMAXPROCS, 1 = sequential). Allocation is
// the dominant cost of a bank at Õ(polylog) words per (vertex,
// repetition) pair, which is why it shards alongside the updates.
func (spec *IncidenceSpec) NewBankParallel(workers int) *Bank {
	b := &Bank{spec: spec, sketches: make([][]*L0, spec.reps)}
	for r := 0; r < spec.reps; r++ {
		b.sketches[r] = make([]*L0, spec.n)
	}
	parallel.ForEachShard(workers, spec.n, func(_ int, sh parallel.Range) {
		for v := sh.Lo; v < sh.Hi; v++ {
			for r := 0; r < spec.reps; r++ {
				b.sketches[r][v] = spec.specs[r].NewL0()
			}
		}
	})
	return b
}

// AddEdges inserts every edge into the bank with the work sharded by
// vertex range across workers. A single O(m) scan buckets the two
// endpoint updates of each edge by owning shard; workers then apply only
// their own bucket, so total work stays O(m) plus the sketch updates
// regardless of worker count. Within a bucket updates keep edge order,
// so the result is bit-identical to calling AddEdge(e.U, e.V) for each
// edge in order, for any worker count. Panics on self loops, like
// AddEdge.
func (b *Bank) AddEdges(edges []graph.Edge, workers int) {
	shards := parallel.Shards(b.spec.n, parallel.Workers(workers))
	if len(shards) <= 1 {
		// Sequential: skip the bucketing pass entirely.
		for _, e := range edges {
			b.AddEdge(e.U, e.V)
		}
		return
	}
	shardOf := make([]int32, b.spec.n)
	for si, sh := range shards {
		for v := sh.Lo; v < sh.Hi; v++ {
			shardOf[v] = int32(si)
		}
	}
	type upd struct {
		v     int32
		delta int64
		key   uint64
	}
	buckets := make([][]upd, len(shards))
	for _, e := range edges {
		if e.U == e.V {
			panic("sketch: self loop")
		}
		key := graph.KeyOf(e.U, e.V)
		lo, hi := e.U, e.V
		if lo > hi {
			lo, hi = hi, lo
		}
		buckets[shardOf[lo]] = append(buckets[shardOf[lo]], upd{v: lo, delta: 1, key: key})
		buckets[shardOf[hi]] = append(buckets[shardOf[hi]], upd{v: hi, delta: -1, key: key})
	}
	parallel.Run(workers, len(shards), func(si int) {
		for _, u := range buckets[si] {
			for r := range b.sketches {
				b.sketches[r][u.v].Update(u.key, u.delta)
			}
		}
	})
}

// BuildBank allocates a bank and inserts the edges, both sharded by
// vertex range across workers — the one-round distributed construction of
// Section 4.2 collapsed onto a shared-memory pool.
func (spec *IncidenceSpec) BuildBank(edges []graph.Edge, workers int) *Bank {
	b := spec.NewBankParallel(workers)
	b.AddEdges(edges, workers)
	return b
}
