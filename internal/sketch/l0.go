package sketch

import "repro/internal/xrand"

// L0Spec fixes the shared randomness for a family of mergeable ℓ0-sampler
// sketches: a level hash (geometric subsampling) and per-level s-sparse
// specs. All samplers from one spec subsample identically, so merging
// samplers of vectors x and y yields a valid sampler of x+y.
type L0Spec struct {
	levels    int
	levelHash *xrand.PolyHash
	sspec     *SSparseSpec
}

// NewL0Spec creates a spec. universeLog should be ~log2 of the number of
// distinct keys that may appear (levels = universeLog + 2); sparsity s
// around 8-16 gives small failure probability per decode.
func NewL0Spec(r *xrand.RNG, universeLog, s, rows int) *L0Spec {
	if universeLog < 1 {
		universeLog = 1
	}
	return &L0Spec{
		levels:    universeLog + 2,
		levelHash: xrand.NewPolyHash(r.Split(0x10), 2),
		sspec:     NewSSparseSpec(r.Split(0x20), s, rows),
	}
}

// Levels returns the number of subsampling levels.
func (spec *L0Spec) Levels() int { return spec.levels }

// L0 is a mergeable ℓ0-sampler: after arbitrary insertions and deletions
// it returns some non-zero coordinate of the implicit vector (whp), with
// the choice statistically close to uniform over the support.
type L0 struct {
	spec   *L0Spec
	levels []*SSparse
}

// NewL0 returns a zeroed sampler. The level sketches and their cells
// come from two batched allocations rather than one pair per level: a
// bank build constructs n·reps of these samplers, so the constant
// number of allocations per sampler dominates cold-build cost. Each
// level's cell slice is full-capacity sub-sliced, so per-level state
// stays as independent as individually allocated sketches.
func (spec *L0Spec) NewL0() *L0 {
	ss := spec.sspec
	per := ss.rows * ss.buckets
	cells := make([]OneSparse, spec.levels*per)
	for i := range cells {
		cells[i] = NewOneSparse(ss.z)
	}
	structs := make([]SSparse, spec.levels)
	lv := make([]*SSparse, spec.levels)
	for i := range lv {
		structs[i] = SSparse{spec: ss, cells: cells[i*per : (i+1)*per : (i+1)*per]}
		lv[i] = &structs[i]
	}
	return &L0{spec: spec, levels: lv}
}

// Words returns the storage footprint in 64-bit words.
func (s *L0) Words() int {
	w := 0
	for _, lv := range s.levels {
		w += lv.Words()
	}
	return w
}

// Update adds delta at key in the implicit vector. The key reduction,
// field delta and z^key are computed once and shared by every
// subsampling level (all levels come from one SSparseSpec, hence one
// fingerprint base).
func (s *L0) Update(key uint64, delta int64) {
	s.updateRaw(key%prime, toField(delta), s.spec.sspec.zpow.Pow(key))
}

// UpdateBlock applies a block of updates (keys[i], deltas[i]) in order,
// hoisting the per-update invariants out of the level and row loops.
// Bit-identical to calling Update per pair.
func (s *L0) UpdateBlock(keys []uint64, deltas []int64) {
	if len(keys) != len(deltas) {
		panic("sketch: UpdateBlock length mismatch")
	}
	zp := s.spec.sspec.zpow
	for i, key := range keys {
		s.updateRaw(key%prime, toField(deltas[i]), zp.Pow(key))
	}
}

// updateRaw fans one hoisted update out to the surviving subsampling
// levels.
func (s *L0) updateRaw(keyMod, d, zPowKey uint64) {
	maxLevel := s.spec.levelHash.LevelMod(keyMod, s.spec.levels-1)
	for l := 0; l <= maxLevel; l++ {
		s.levels[l].updateRaw(keyMod, d, zPowKey)
	}
}

// UpdateRows applies one (key, delta) update to every sampler in rows —
// one per repetition, each from its own spec — hoisting the shared key
// reduction and field delta across repetitions; each repetition still
// evaluates z^key under its own base through its window table. This is
// the multi-repetition entry point of the MapReduce reducers, which
// maintain a row of samplers per vertex. Bit-identical to updating each
// row separately.
func UpdateRows(rows []*L0, key uint64, delta int64) {
	keyMod := key % prime
	d := toField(delta)
	for _, s := range rows {
		s.updateRaw(keyMod, d, s.spec.sspec.zpow.Pow(key))
	}
}

// Reset zeroes the sampler in place for reuse, keeping every level's
// allocation.
func (s *L0) Reset() {
	for _, lv := range s.levels {
		lv.Reset()
	}
}

// Merge absorbs another sampler from the same spec.
func (s *L0) Merge(o *L0) {
	if s.spec != o.spec {
		panic("sketch: merging L0 samplers from different specs")
	}
	for i := range s.levels {
		s.levels[i].Merge(o.levels[i])
	}
}

// Clone returns an independent copy.
func (s *L0) Clone() *L0 {
	lv := make([]*SSparse, len(s.levels))
	for i := range lv {
		lv[i] = s.levels[i].Clone()
	}
	return &L0{spec: s.spec, levels: lv}
}

// Sample returns a non-zero coordinate of the implicit vector. It scans
// from the sparsest (deepest) level down to level 0 and returns the
// smallest-hash surviving key at the first level that decodes, which makes
// the choice a deterministic function of the sketch randomness (required
// for consistent reuse inside one Boruvka round). ok=false means the
// vector is zero or recovery failed at every level (probability
// exponentially small in the spec's rows when the vector is non-zero).
func (s *L0) Sample() (key uint64, value int64, ok bool) {
	for l := len(s.levels) - 1; l >= 0; l-- {
		keys, values, dok := s.levels[l].Recover()
		if !dok || len(keys) == 0 {
			continue
		}
		best := 0
		bestHash := s.spec.levelHash.Hash(keys[0])
		for i := 1; i < len(keys); i++ {
			if h := s.spec.levelHash.Hash(keys[i]); h < bestHash {
				best, bestHash = i, h
			}
		}
		return keys[best], values[best], true
	}
	return 0, 0, false
}

// IsZeroLikely reports whether level 0 decodes to the empty vector; exact
// when fewer than s non-zeros remain, heuristic otherwise.
func (s *L0) IsZeroLikely() bool {
	keys, _, ok := s.levels[0].Recover()
	return ok && len(keys) == 0
}
