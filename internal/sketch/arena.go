package sketch

// Arena is a free-list pool of sketch allocations, keyed by spec. A bank
// build is dominated by its per-(vertex, repetition) L0 allocations —
// Õ(polylog) words each, n·reps of them — and a pooled Get hands back a
// Reset sketch instead: Reset restores the exact zero state NewSSparse /
// NewL0 construct, so a build drawing from an arena is bit-identical to
// a cold build, it merely skips the allocator.
//
// Ownership rules:
//
//   - A sketch obtained from Get belongs to the caller until it is Put
//     back (or dropped — the arena never tracks lent sketches, so a
//     sketch that aborts with its run is ordinary garbage).
//   - Put requires the spec the sketch was created from; handing a
//     sketch to a pool of a different spec panics — a cross-spec reuse
//     would silently decode under the wrong hash functions.
//   - An Arena is NOT safe for concurrent use. Parallel builders carve
//     per-shard sub-arenas with Shard and pre-split the root's free
//     lists sequentially up front (the same discipline as pre-split
//     RNGs): during the parallel region each worker touches only its
//     own sub-arena.
type Arena struct {
	ssparse map[*SSparseSpec][]*SSparse
	l0      map[*L0Spec][]*L0
	shards  []*Arena
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		ssparse: make(map[*SSparseSpec][]*SSparse),
		l0:      make(map[*L0Spec][]*L0),
	}
}

// GetSSparse returns a zeroed sketch of the spec: a pooled one Reset in
// place, or a fresh one when the pool is empty.
func (a *Arena) GetSSparse(spec *SSparseSpec) *SSparse {
	pool := a.ssparse[spec]
	if last := len(pool) - 1; last >= 0 {
		sk := pool[last]
		a.ssparse[spec] = pool[:last]
		sk.Reset()
		return sk
	}
	return spec.NewSSparse()
}

// PutSSparse returns sketches to the spec's pool. The caller must not
// use them afterwards. Panics if a sketch was created from a different
// spec.
func (a *Arena) PutSSparse(spec *SSparseSpec, sks ...*SSparse) {
	for _, sk := range sks {
		if sk.spec != spec {
			panic("sketch: arena Put of SSparse from a different spec")
		}
	}
	a.ssparse[spec] = append(a.ssparse[spec], sks...)
}

// GetL0 returns a zeroed ℓ0 sampler of the spec: a pooled one Reset in
// place, or a fresh one when the pool is empty.
func (a *Arena) GetL0(spec *L0Spec) *L0 {
	pool := a.l0[spec]
	if last := len(pool) - 1; last >= 0 {
		s := pool[last]
		a.l0[spec] = pool[:last]
		s.Reset()
		return s
	}
	return spec.NewL0()
}

// PutL0 returns samplers to the spec's pool. The caller must not use
// them afterwards. Panics if a sampler was created from a different
// spec.
func (a *Arena) PutL0(spec *L0Spec, ss ...*L0) {
	for _, s := range ss {
		if s.spec != spec {
			panic("sketch: arena Put of L0 from a different spec")
		}
	}
	a.l0[spec] = append(a.l0[spec], ss...)
}

// Shard returns the i-th sub-arena, creating empty ones on demand. Sub-
// arenas exist for parallel builders: the owner pre-splits pooled
// sketches into them sequentially (Presplit), each worker then Gets only
// from its own shard, and Drain folds leftovers back afterwards. Shard
// itself must only be called sequentially.
func (a *Arena) Shard(i int) *Arena {
	for len(a.shards) <= i {
		a.shards = append(a.shards, NewArena())
	}
	return a.shards[i]
}

// PresplitL0 moves up to counts[i] pooled samplers of the spec from the
// root pool into sub-arena i, sequentially — the arena analogue of
// pre-splitting RNG seeds before a parallel region. Shards whose demand
// exceeds the pool simply allocate fresh during the build.
func (a *Arena) PresplitL0(spec *L0Spec, counts []int) {
	pool := a.l0[spec]
	for i, want := range counts {
		if want > len(pool) {
			want = len(pool)
		}
		if want <= 0 {
			continue
		}
		cut := len(pool) - want
		a.Shard(i).PutL0(spec, pool[cut:]...)
		pool = pool[:cut]
	}
	a.l0[spec] = pool
}

// Drain folds every sub-arena's pools back into the root. Sequential
// use only; callers run it after the parallel region so retained
// capacity is visible (and poolable) globally again.
func (a *Arena) Drain() {
	for _, sh := range a.shards {
		sh.Drain()
		//lint:ordered pool consolidation; free-list order never affects results
		for spec, pool := range sh.ssparse {
			a.ssparse[spec] = append(a.ssparse[spec], pool...)
			delete(sh.ssparse, spec)
		}
		//lint:ordered pool consolidation; free-list order never affects results
		for spec, pool := range sh.l0 {
			a.l0[spec] = append(a.l0[spec], pool...)
			delete(sh.l0, spec)
		}
	}
}

// RetainedWords reports the pooled capacity in 64-bit words, including
// sub-arenas — the observability hook engine.Arena folds into its own
// RetainedWords: memory the process keeps warm, never part of any run's
// metered live space.
func (a *Arena) RetainedWords() int {
	w := 0
	//lint:ordered word-count accumulation over ints, order-independent
	for _, pool := range a.ssparse {
		for _, sk := range pool {
			w += sk.Words()
		}
	}
	//lint:ordered word-count accumulation over ints, order-independent
	for _, pool := range a.l0 {
		for _, s := range pool {
			w += s.Words()
		}
	}
	for _, sh := range a.shards {
		w += sh.RetainedWords()
	}
	return w
}
