package xrand

import "testing"

func TestStdDeterministic(t *testing.T) {
	a, b := Std(7), Std(7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: %d != %d for the same seed", i, x, y)
		}
	}
}

func TestStdMatchesRNGStream(t *testing.T) {
	// Std must expose exactly the underlying RNG's Int63 stream so a
	// seed pins the same values whether code draws via xrand.RNG or via
	// the bridge.
	std := Std(99)
	raw := New(99)
	for i := 0; i < 100; i++ {
		if x, y := std.Int63(), raw.Int63(); x != y {
			t.Fatalf("draw %d: bridge %d, raw %d", i, x, y)
		}
	}
}

func TestStdSeedResets(t *testing.T) {
	std := Std(5)
	first := make([]int64, 10)
	for i := range first {
		first[i] = std.Int63()
	}
	std.Seed(5)
	for i := range first {
		if got := std.Int63(); got != first[i] {
			t.Fatalf("draw %d after re-seed: %d, want %d", i, got, first[i])
		}
	}
}
