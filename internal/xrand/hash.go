package xrand

import "math/bits"

// k-wise independent hash families via polynomial evaluation over the
// Mersenne prime p = 2^61 - 1. For sketching we need limited-independence
// guarantees (pairwise for subsampling levels, 2k-wise for s-sparse
// recovery fingerprints); polynomial hashing gives exactly k-wise
// independence when the k coefficients are uniform in [0, p).

// MersennePrime61 is 2^61 - 1, the field modulus for PolyHash.
const MersennePrime61 = (1 << 61) - 1

// PolyHash is a k-wise independent hash function h: [2^61-1] -> [2^61-1]
// defined by a degree-(k-1) polynomial with random coefficients.
type PolyHash struct {
	coef []uint64 // degree k-1 polynomial, coef[0] is the constant term
}

// NewPolyHash draws a fresh k-wise independent hash function using r.
// k must be at least 1.
func NewPolyHash(r *RNG, k int) *PolyHash {
	if k < 1 {
		panic("xrand: PolyHash needs k >= 1")
	}
	coef := make([]uint64, k)
	for i := range coef {
		// Rejection-sample uniform values below the prime.
		for {
			v := r.Uint64() & MersennePrime61 // 61 bits
			if v < MersennePrime61 {
				coef[i] = v
				break
			}
		}
	}
	return &PolyHash{coef: coef}
}

// mulmod61 computes a*b mod 2^61-1 using 128-bit intermediate arithmetic.
func mulmod61(a, b uint64) uint64 {
	hi, lo := mul128(a, b)
	// a*b = hi*2^64 + lo. Reduce mod 2^61-1 using 2^61 ≡ 1:
	// split into 61-bit chunks.
	r := (lo & MersennePrime61) + ((lo >> 61) | (hi << 3 & MersennePrime61)) + (hi >> 58)
	r = (r & MersennePrime61) + (r >> 61)
	if r >= MersennePrime61 {
		r -= MersennePrime61
	}
	return r
}

// addmod61 computes a+b mod 2^61-1 for a, b < 2^61-1.
func addmod61(a, b uint64) uint64 {
	s := a + b
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Hash evaluates the polynomial at x (reduced into the field first).
func (h *PolyHash) Hash(x uint64) uint64 {
	return h.HashMod(x % MersennePrime61)
}

// HashMod evaluates the polynomial at an already-reduced point
// xMod < 2^61-1 — for callers that reduce a key once and share it
// across many hash evaluations (the sketch update kernel). Bit-identical
// to Hash(x) when xMod = x % MersennePrime61. The pairwise (k=2) case —
// every row and level hash in the sketch substrate — is straight-line
// a0 + a1·x, which Horner's loop computes identically.
func (h *PolyHash) HashMod(xMod uint64) uint64 {
	if len(h.coef) == 2 {
		return addmod61(mulmod61(h.coef[1], xMod), h.coef[0])
	}
	acc := uint64(0)
	for i := len(h.coef) - 1; i >= 0; i-- {
		acc = addmod61(mulmod61(acc, xMod), h.coef[i])
	}
	return acc
}

// HashRange maps x to [0, n) with at most one part in 2^61 of bias.
func (h *PolyHash) HashRange(x uint64, n int) int {
	return h.HashRangeMod(x%MersennePrime61, n)
}

// HashRangeMod is HashRange at an already-reduced point (see HashMod).
func (h *PolyHash) HashRangeMod(xMod uint64, n int) int {
	if n <= 0 {
		panic("xrand: HashRange with non-positive n")
	}
	return int(h.HashMod(xMod) % uint64(n))
}

// HashFloat maps x to a uniform-ish float64 in [0,1).
func (h *PolyHash) HashFloat(x uint64) float64 {
	return float64(h.Hash(x)) / float64(MersennePrime61)
}

// Level returns the subsampling level of x: the number of leading
// successes in a sequence of fair coin flips derived from the hash, i.e.
// Pr[Level(x) >= l] = 2^-l (up to the independence of the family). Used
// for the geometric edge-subsampling G_0 ⊇ G_1 ⊇ ... in sparsifier and
// L0-sampler constructions. The result is capped at max.
func (h *PolyHash) Level(x uint64, max int) int {
	return h.LevelMod(x%MersennePrime61, max)
}

// LevelMod is Level at an already-reduced point (see HashMod). The
// leading-success count is the number of trailing one bits of the hash,
// capped at max — identical to the bit-walk loop it replaces.
func (h *PolyHash) LevelMod(xMod uint64, max int) int {
	if max < 0 {
		max = 0
	}
	l := bits.TrailingZeros64(^h.HashMod(xMod))
	if l > max {
		l = max
	}
	return l
}
