package xrand

//lint:rng xrand owns the only math/rand import; Std is the sanctioned bridge
import "math/rand"

// Std wraps a seeded RNG in a *rand.Rand for APIs that demand one
// (testing/quick, sort.Shuffle-style helpers from other packages).
// The returned value is NOT safe for concurrent use and must not cross
// a goroutine boundary — parallel code pre-splits with SplitRNGs and
// gives each worker its own RNG instead.
func Std(seed uint64) *rand.Rand {
	return rand.New(&stdSource{rng: New(seed)})
}

// stdSource adapts RNG to rand.Source.
type stdSource struct{ rng *RNG }

func (s *stdSource) Int63() int64 { return s.rng.Int63() }

func (s *stdSource) Seed(seed int64) { s.rng = New(uint64(seed)) }
