package xrand

import "testing"

// mul128Reference is the retired 32-bit-limb schoolbook product, kept
// as the cross-check for the bits.Mul64 replacement: same (hi, lo) for
// every operand pair, so every downstream consumer (mulmod61, Intn's
// Lemire rejection) is bit-identical.
func mul128Reference(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid1 := t & mask
	c1 := t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi = aHi*bHi + c1 + (t >> 32)
	return hi, lo
}

// mulBoundaries are operands at the 32/61/64-bit edges where a limb
// carry bug would surface.
var mulBoundaries = []uint64{
	0, 1, 2,
	1<<32 - 1, 1 << 32, 1<<32 + 1,
	MersennePrime61 - 1, MersennePrime61, MersennePrime61 + 1,
	1<<63 - 1, 1 << 63, 1<<64 - 1,
}

func TestMul128MatchesReference(t *testing.T) {
	for _, a := range mulBoundaries {
		for _, b := range mulBoundaries {
			hi, lo := mul128(a, b)
			rhi, rlo := mul128Reference(a, b)
			if hi != rhi || lo != rlo {
				t.Fatalf("mul128(%d, %d) = (%d, %d), reference (%d, %d)", a, b, hi, lo, rhi, rlo)
			}
		}
	}
	r := New(47)
	for i := 0; i < 100000; i++ {
		a, b := r.Uint64(), r.Uint64()
		hi, lo := mul128(a, b)
		rhi, rlo := mul128Reference(a, b)
		if hi != rhi || lo != rlo {
			t.Fatalf("mul128(%d, %d) = (%d, %d), reference (%d, %d)", a, b, hi, lo, rhi, rlo)
		}
	}
}

func FuzzMul128(f *testing.F) {
	for _, a := range mulBoundaries {
		f.Add(a, a^0x9e3779b97f4a7c15)
	}
	f.Fuzz(func(t *testing.T, a, b uint64) {
		hi, lo := mul128(a, b)
		rhi, rlo := mul128Reference(a, b)
		if hi != rhi || lo != rlo {
			t.Fatalf("mul128(%d, %d) = (%d, %d), reference (%d, %d)", a, b, hi, lo, rhi, rlo)
		}
	})
}

// TestHashModMatchesHash pins the reduced-point fast paths — including
// the straight-line degree-1 case the sketch kernel uses — against the
// generic Horner evaluation.
func TestHashModMatchesHash(t *testing.T) {
	r := New(53)
	for _, k := range []int{1, 2, 3, 5} {
		h := NewPolyHash(r.Split(uint64(k)), k)
		for i := 0; i < 20000; i++ {
			x := r.Uint64()
			xMod := x % MersennePrime61
			if got, want := h.HashMod(xMod), h.Hash(x); got != want {
				t.Fatalf("k=%d x=%d: HashMod %d, Hash %d", k, x, got, want)
			}
			if got, want := h.HashRangeMod(xMod, 97), h.HashRange(x, 97); got != want {
				t.Fatalf("k=%d x=%d: HashRangeMod %d, HashRange %d", k, x, got, want)
			}
			for _, max := range []int{0, 1, 7, 40, 64} {
				if got, want := h.LevelMod(xMod, max), legacyLevel(h, x, max); got != want {
					t.Fatalf("k=%d x=%d max=%d: LevelMod %d, legacy %d", k, x, max, got, want)
				}
			}
		}
	}
}

// legacyLevel is the retired bit-walk loop Level replaced with a
// trailing-zeros count.
func legacyLevel(h *PolyHash, x uint64, max int) int {
	v := h.Hash(x)
	l := 0
	for l < max && v&1 == 1 {
		v >>= 1
		l++
	}
	return l
}
