// Package xrand provides deterministic, splittable pseudorandom number
// generation and k-wise independent hash families used throughout the
// sketching and sparsification substrates.
//
// Everything in this repository that uses randomness takes an explicit
// seed so that experiments are reproducible run to run. The generator is
// SplitMix64, which is fast, has a 64-bit state, and — crucially for
// "splittable" use — produces independent child streams by seeding a
// child with a strongly mixed function of the parent stream.
package xrand

import (
	"math"
	"math/bits"
)

// splitmix64 advances the state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 returns a strongly mixed function of x (the SplitMix64 finalizer).
// It is used to derive independent seeds from identifiers.
func Mix64(x uint64) uint64 {
	z := x + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a deterministic pseudorandom generator. The zero value is a valid
// generator seeded with 0; prefer New to make seeds explicit.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: Mix64(seed)}
}

// Split returns a child generator whose stream is independent of the
// parent's subsequent outputs. Distinct labels give distinct children.
func (r *RNG) Split(label uint64) *RNG {
	return &RNG{state: Mix64(splitmix64(&r.state) ^ Mix64(label^0xa5a5a5a5a5a5a5a5))}
}

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return splitmix64(&r.state) }

// Uint32 returns a uniform 32-bit value.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, unbiased.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf returns a value in [1, n] drawn from a (truncated) Zipf distribution
// with exponent s > 0, via inverse-CDF on the precomputed normalizer. For
// repeated draws with the same parameters use NewZipf.
func (r *RNG) Zipf(n int, s float64) int {
	z := NewZipf(n, s)
	return z.Draw(r)
}

// Zipfian is a truncated Zipf sampler over {1..n} with exponent s.
type Zipfian struct {
	cdf []float64
}

// NewZipf precomputes the CDF for a Zipf distribution over {1..n}.
func NewZipf(n int, s float64) *Zipfian {
	if n < 1 {
		panic("xrand: Zipf with n < 1")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipfian{cdf: cdf}
}

// Draw samples one value in [1, len(cdf)].
func (z *Zipfian) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// mul128 returns the 128-bit product of a and b as (hi, lo). bits.Mul64
// compiles to the single MUL instruction; the retired 32-bit-limb
// schoolbook version lives on as mul128Reference in the tests, which
// pin exact (hi, lo) equality on boundary operands and under fuzzing.
func mul128(a, b uint64) (hi, lo uint64) {
	return bits.Mul64(a, b)
}
