package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children with different labels produced equal first outputs")
	}
	// Splitting with the same label after state advance must differ too.
	r2 := New(7)
	d1 := r2.Split(1)
	d2 := r2.Split(1)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("sequential splits with same label produced equal outputs")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(6)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(8)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	if math.Abs(float64(hits)/n-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate %f", float64(hits)/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestExpPositiveAndMean(t *testing.T) {
	r := New(10)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp()
		if v < 0 {
			t.Fatal("Exp returned negative")
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("Exp mean %f far from 1", sum/n)
	}
}

func TestZipfRangeAndMonotonicity(t *testing.T) {
	r := New(12)
	z := NewZipf(50, 1.1)
	counts := make([]int, 51)
	for i := 0; i < 100000; i++ {
		v := z.Draw(r)
		if v < 1 || v > 50 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[1] <= counts[10] || counts[10] <= counts[50] {
		t.Fatalf("Zipf counts not decreasing: c1=%d c10=%d c50=%d", counts[1], counts[10], counts[50])
	}
}

func TestMul128(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul128(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul128(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestMulmod61MatchesBigOnSmall(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := uint64(a), uint64(b)
		return mulmod61(x, y) == (x*y)%MersennePrime61
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulmod61Large(t *testing.T) {
	// (2^61-2)^2 mod (2^61-1) = (-1)^2 = 1
	if got := mulmod61(MersennePrime61-1, MersennePrime61-1); got != 1 {
		t.Fatalf("(p-1)^2 mod p = %d, want 1", got)
	}
	// (2^60)*(2) mod p = 2^61 mod p = 1
	if got := mulmod61(1<<60, 2); got != 1 {
		t.Fatalf("2^61 mod p = %d, want 1", got)
	}
}

func TestPolyHashDeterministic(t *testing.T) {
	h := NewPolyHash(New(77), 4)
	for x := uint64(0); x < 100; x++ {
		if h.Hash(x) != h.Hash(x) {
			t.Fatal("PolyHash not deterministic")
		}
	}
}

func TestPolyHashPairwiseCollisions(t *testing.T) {
	// For a pairwise-independent family the collision probability over a
	// range of n buckets is ~1/n; check it is not wildly off.
	r := New(13)
	h := NewPolyHash(r, 2)
	const keys = 2000
	const buckets = 1 << 16
	seen := map[int]int{}
	coll := 0
	for x := uint64(0); x < keys; x++ {
		b := h.HashRange(x, buckets)
		coll += seen[b]
		seen[b]++
	}
	// Expected collisions ~ keys^2/(2*buckets) ≈ 30.5.
	if coll > 200 {
		t.Fatalf("too many collisions: %d", coll)
	}
}

func TestPolyHashRange(t *testing.T) {
	h := NewPolyHash(New(14), 3)
	for x := uint64(0); x < 1000; x++ {
		v := h.HashRange(x, 17)
		if v < 0 || v >= 17 {
			t.Fatalf("HashRange out of bounds: %d", v)
		}
		f := h.HashFloat(x)
		if f < 0 || f >= 1 {
			t.Fatalf("HashFloat out of bounds: %v", f)
		}
	}
}

func TestLevelDistribution(t *testing.T) {
	h := NewPolyHash(New(15), 2)
	const n = 1 << 16
	counts := make([]int, 20)
	for x := uint64(0); x < n; x++ {
		counts[h.Level(x, 19)]++
	}
	// Level 0 should hold about half the keys; level 1 about a quarter.
	if math.Abs(float64(counts[0])/n-0.5) > 0.05 {
		t.Fatalf("level 0 fraction %f", float64(counts[0])/n)
	}
	if math.Abs(float64(counts[1])/n-0.25) > 0.05 {
		t.Fatalf("level 1 fraction %f", float64(counts[1])/n)
	}
}

func TestLevelCap(t *testing.T) {
	h := NewPolyHash(New(16), 2)
	for x := uint64(0); x < 10000; x++ {
		if h.Level(x, 3) > 3 {
			t.Fatal("Level exceeded cap")
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for x := uint64(0); x < 10000; x++ {
		v := Mix64(x)
		if seen[v] {
			t.Fatalf("Mix64 collision at %d", x)
		}
		seen[v] = true
	}
}

func TestShuffle(t *testing.T) {
	r := New(17)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v (orig %v)", xs, orig)
	}
}
