// Package repro reproduces "Access to Data and Number of Iterations:
// Dual Primal Algorithms for Maximum Matching under Resource
// Constraints" by Kook Jin Ahn and Sudipto Guha (SPAA 2015,
// arXiv:1307.4359): a (1-ε)-approximation for weighted nonbipartite
// maximum b-matching using O(p/ε) rounds of adaptive sketching and
// O(n^(1+1/p)) central space.
//
// The public API is the repro/match package: match.New configures a
// solver with functional options, Solver.Solve(ctx, src) runs it
// against any stream backend with context cancellation honored at pass
// and round boundaries, match.Budget makes the paper's resource axes
// (passes, rounds, space) enforceable with best-so-far semantics, an
// Observer streams the per-round dual trajectory, and
// match.WithAlgorithm selects any substrate from the algorithm registry
// (match.Algorithms) — all of them run on one shared round-loop driver,
// so resources meter and budget identically across models of
// computation. See the package documentation of repro/match for
// runnable examples.
//
// The machinery lives under internal/: the shared round-loop driver and
// registry (engine), the dual-primal solver (core) and the ported
// substrates behind the registry (algos), the components they depend on
// (sketch, sparsify, matching, lp, oddset, cover, pack, levels, stream,
// graph, parallel — the sharded worker pool), the distributed-model
// simulators (mapreduce, congest, semistream) and the experiment
// harness (bench). See DESIGN.md for the system inventory (section 8
// documents the facade, section 9 the engine) and EXPERIMENTS.md for
// measured results.
//
// The root package carries the benchmark entry points (bench_test.go):
// one testing.B benchmark per experiment table.
package repro
