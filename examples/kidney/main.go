// Kidney-exchange style workload: paired kidney donation builds a
// nonbipartite compatibility graph — vertices are incompatible
// (patient, donor) pairs, an edge connects two pairs whose donors can
// each give to the other's patient, and the weight scores the combined
// transplant quality (HLA match, age difference). A maximum weight
// matching selects the best set of simultaneous two-way swaps.
//
// Real exchange pools arrive as streams of newly registered pairs and
// re-evaluated crossmatches, far larger than one coordinator wants to
// materialize — exactly the regime of the paper. This example generates
// a synthetic pool (blood types with realistic frequencies, PRA
// sensitization, match-quality weights), runs the public match solver
// under an enforced round budget — a match run scheduled between
// crossmatch refreshes gets a bounded number of adaptive rounds, and a
// best-so-far answer beats no answer — and compares against exact
// blossom.
//
//	go run ./examples/kidney
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
	"repro/internal/xrand"
	"repro/match"
)

// bloodType frequencies (approximate US distribution).
var bloodTypes = []struct {
	name string
	freq float64
}{
	{"O", 0.45}, {"A", 0.40}, {"B", 0.11}, {"AB", 0.04},
}

func drawBlood(r *xrand.RNG) string {
	u := r.Float64()
	acc := 0.0
	for _, bt := range bloodTypes {
		acc += bt.freq
		if u < acc {
			return bt.name
		}
	}
	return "AB"
}

// compatible reports ABO compatibility donor -> patient.
func compatible(donor, patient string) bool {
	switch donor {
	case "O":
		return true
	case "A":
		return patient == "A" || patient == "AB"
	case "B":
		return patient == "B" || patient == "AB"
	default:
		return patient == "AB"
	}
}

type pair struct {
	patientBT, donorBT string
	pra                float64 // sensitization: probability a crossmatch fails
	quality            float64 // donor quality score in [0.5, 1]
}

func main() {
	const nPairs = 400
	r := xrand.New(2026)
	pairs := make([]pair, nPairs)
	for i := range pairs {
		pairs[i] = pair{
			patientBT: drawBlood(r),
			donorBT:   drawBlood(r),
			pra:       r.Float64() * 0.7,
			quality:   0.5 + 0.5*r.Float64(),
		}
	}
	// Build the compatibility graph: edge (i, j) iff donor_i -> patient_j
	// and donor_j -> patient_i are both ABO-compatible and pass the
	// simulated crossmatch. Weight = combined quality (scaled to >= 1).
	g := graph.New(nPairs)
	for i := 0; i < nPairs; i++ {
		for j := i + 1; j < nPairs; j++ {
			pi, pj := pairs[i], pairs[j]
			if !compatible(pi.donorBT, pj.patientBT) || !compatible(pj.donorBT, pi.patientBT) {
				continue
			}
			if r.Bernoulli(pi.pra) || r.Bernoulli(pj.pra) {
				continue // positive crossmatch
			}
			w := 1 + 10*(pi.quality+pj.quality)
			g.MustAddEdge(i, j, w)
		}
	}
	fmt.Printf("pool: %d pairs, %d feasible two-way swaps\n", g.N(), g.M())

	// The operational constraint is explicit: at most 6 adaptive rounds
	// before the exchange must act. If the budget trips, the engine hands
	// back the best feasible set of swaps it has found so far.
	res, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
		match.WithEps(0.25),
		match.WithSpaceExponent(2),
		match.WithSeed(11),
		match.WithBudget(match.Budget{Rounds: 6}),
	)
	switch {
	case errors.Is(err, match.ErrBudgetExceeded):
		var be *match.BudgetError
		errors.As(err, &be)
		fmt.Printf("round budget tripped (%s: used %d, limit %d) -> acting on the best-so-far matching\n",
			be.Axis, be.Used, be.Limit)
	case err != nil:
		log.Fatal(err)
	}
	fmt.Printf("dual-primal: %d swaps selected, total quality %.1f\n", res.Matching.Size(), res.Weight)
	fmt.Printf("resources: %d+%d rounds, peak %d sampled swaps held centrally (of %d total)\n",
		res.Stats.InitRounds, res.Stats.SamplingRounds, res.Stats.PeakSampleEdges, g.M())

	_, opt := matching.MaxWeightMatchingFloat(g, false)
	fmt.Printf("exact optimum %.1f -> ratio %.4f\n", opt, res.Weight/opt)

	transplants := 2 * res.Matching.Size()
	fmt.Printf("=> %d patients transplanted via two-way exchange\n", transplants)
}
