// Congested clique example: n players (one per vertex) cooperate to
// build a maximal b-matching, each sending at most ~n^(1/p) edge words
// per round — the regime of the paper's distributed corollary ("O(p/ε)
// rounds and O(n^(1/p)) size message per vertex").
//
// A centralized reference run through the public match solver closes the
// loop: the distributed players' maximal matching is compared against
// the dual-primal (1-ε) answer on the same instance.
//
//	go run ./examples/congestedclique
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
	"repro/match"
)

func main() {
	n := 300
	g := graph.GNM(n, 15000, graph.WeightConfig{}, 21)
	for _, p := range []float64{1.5, 2, 3} {
		res := congest.MaximalMatchingClique(g, p, 31, 0)
		// Validate the result centrally.
		bestIdx := map[uint64]int{}
		for i, e := range g.Edges() {
			bestIdx[e.Key()] = i
		}
		m := &matching.Matching{Mult: []int{}}
		for i, pr := range res.Pairs {
			m.EdgeIdx = append(m.EdgeIdx, bestIdx[graph.KeyOf(pr[0], pr[1])])
			m.Mult = append(m.Mult, res.Mults[i])
		}
		status := "MAXIMAL"
		if err := m.Validate(g); err != nil {
			status = "INVALID: " + err.Error()
		} else if !m.IsMaximal(g) {
			status = "not maximal"
		}
		budget := int(math.Ceil(math.Pow(float64(n), 1/p)))
		fmt.Printf("p=%.1f: matched %d edges in %d rounds; per-vertex message <= %d words (budget n^(1/p)=%d) [%s]\n",
			p, len(res.Pairs), res.Stats.Rounds, res.MaxSampleMsgWords, budget, status)
	}

	// The same protocol through the public registry: the engine driver
	// owns the loop, so the clique rounds land on the same Stats meters
	// (and under the same budgets) as every other algorithm.
	viaRegistry, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
		match.WithAlgorithm("clique-maximal"), match.WithSpaceExponent(2), match.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("via match.WithAlgorithm(%q): %d edges, %d driver rounds = simulated clique rounds\n",
		"clique-maximal", viaRegistry.Matching.Size(), viaRegistry.Stats.SamplingRounds)

	// Centralized reference: the (1-ε) dual-primal solver through the
	// public facade, on the same instance.
	ref, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
		match.WithEps(0.25), match.WithSpaceExponent(2), match.WithSeed(31))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: dual-primal (eps=0.25) matches %d edges in %d+%d rounds — maximal matching is its 1/2-approximation floor\n",
		ref.Matching.Size(), ref.Stats.InitRounds, ref.Stats.SamplingRounds)
}
