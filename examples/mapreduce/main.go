// MapReduce example: the Section 4.2 pipeline. Per-vertex ℓ0 sketches of
// the vertex-edge incidence vectors are built in one MapReduce round,
// shipped to a single machine in a second round, and post-processed
// centrally — connectivity without any machine ever holding the edge
// set. The cluster simulator reports rounds, shuffle volume and the peak
// per-machine memory, the quantities Corollary 2 accounts for.
//
// The same constrained-access discipline drives the matching solver: a
// final section runs the public match solver over the instance with an
// enforced pass budget — the streaming analogue of capping MapReduce
// rounds — and reports what a bounded number of data accesses buys.
//
//	go run ./examples/mapreduce
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/mapreduce"
	"repro/internal/stream"
	"repro/match"
)

func main() {
	// A graph big enough that no single "machine" should hold all edges:
	// two dense clusters plus a bridge, 60k+ edges.
	n := 500
	g := graph.GNP(n, 0.25, graph.WeightConfig{}, 3)
	// Make it interestingly disconnected: remove the bridge region by
	// building two separate blobs instead.
	left := graph.GNP(n/2, 0.25, graph.WeightConfig{}, 4)
	merged := graph.New(n)
	for _, e := range left.Edges() {
		merged.MustAddEdge(int(e.U), int(e.V), 1)
	}
	right := graph.GNP(n-n/2, 0.25, graph.WeightConfig{}, 5)
	off := n / 2
	for _, e := range right.Edges() {
		merged.MustAddEdge(int(e.U)+off, int(e.V)+off, 1)
	}
	_, trueComps := merged.ConnectedComponents()
	fmt.Printf("input: n=%d m=%d, true components=%d\n", merged.N(), merged.M(), trueComps)
	_ = g

	cluster := mapreduce.NewCluster(16)
	uf, stats := mapreduce.ConnectedComponentsMR(cluster, merged, 99)
	fmt.Printf("sketch pipeline found %d components\n", uf.Components())
	fmt.Printf("rounds:              %d (sketch + collect)\n", stats.Rounds)
	fmt.Printf("shuffle volume:      %d key-value pairs\n", stats.ShuffleKVs)
	fmt.Printf("peak machine load:   round1=%d round2=%d KVs (m=%d)\n",
		stats.RoundMaxKVs[0], stats.RoundMaxKVs[1], merged.M())
	fmt.Printf("=> the collecting machine held %.1f%% of the edge count\n",
		100*float64(stats.RoundMaxKVs[1])/float64(merged.M()))

	// Bounded data access for the matching solver on the same graph: a
	// 9-pass budget (W* scan, level census, initial lambda, then two
	// passes per sampling round) cuts the run at the first checkpoint
	// where the meter exceeds it — each pass is one MapReduce round in
	// the Section 4.2 correspondence.
	res, err := match.Solve(context.Background(), stream.NewEdgeStream(merged),
		match.WithSeed(17), match.WithBudget(match.Budget{Passes: 9}))
	switch {
	case errors.Is(err, match.ErrBudgetExceeded):
		var be *match.BudgetError
		errors.As(err, &be)
		fmt.Printf("matching under a pass budget: tripped on %s (used %d / limit %d)\n", be.Axis, be.Used, be.Limit)
	case err != nil:
		log.Fatal(err)
	}
	fmt.Printf("=> %d matched edges from %d passes over the edge stream (peak %d words held centrally, m=%d)\n",
		res.Matching.Size(), res.Stats.Passes, res.Stats.PeakWords, merged.M())
}
