// Quickstart: solve a (1-ε)-approximate maximum weight matching on a
// random nonbipartite graph through the public match package, watch the
// dual trajectory with an observer, and check the answer against the
// exact blossom algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/graph"
	"repro/internal/matching"
	"repro/internal/stream"
	"repro/match"
)

func main() {
	// A random weighted nonbipartite graph: 120 vertices, 1000 edges,
	// weights uniform in [1, 50].
	g := graph.GNM(120, 1000, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 7)

	// Solve with eps = 1/4 and space exponent p = 2 (central space ~
	// n^{3/2} edge words, O(p/eps) sampling rounds) through the one-shot
	// helper, tapping the per-round events the engine emits.
	trace := &match.TraceObserver{}
	res, err := match.Solve(context.Background(), stream.NewEdgeStream(g),
		match.WithEps(0.25),
		match.WithSpaceExponent(2),
		match.WithSeed(42),
		match.WithObserver(trace),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dual-primal matching: %d edges, weight %.2f\n", res.Matching.Size(), res.Weight)
	fmt.Printf("resource usage: %d init + %d sampling rounds, peak %d sampled edges, %d oracle uses\n",
		res.Stats.InitRounds, res.Stats.SamplingRounds,
		res.Stats.PeakSampleEdges, res.Stats.OracleUses)
	if n := len(trace.Events); n > 0 {
		last := trace.Events[n-1]
		fmt.Printf("observer: %d round events; final round entered with lambda=%.3f after %d passes\n",
			n, last.Lambda, last.Passes)
	}
	fmt.Printf("dual certificate: optimum <= %.2f (lambda=%.3f, eps baked in at solve time)\n",
		res.CertifiedUpperBound(), res.Lambda)

	// Exact optimum for reference (O(n^3) blossom — fine at this size).
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	fmt.Printf("exact optimum %.2f -> ratio %.4f (target >= %.2f)\n", opt, res.Weight/opt, 1-0.25)
}
