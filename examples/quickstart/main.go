// Quickstart: solve a (1-ε)-approximate maximum weight matching on a
// random nonbipartite graph with the dual-primal solver, then check the
// answer against the exact blossom algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/matching"
)

func main() {
	// A random weighted nonbipartite graph: 120 vertices, 1000 edges,
	// weights uniform in [1, 50].
	g := graph.GNM(120, 1000, graph.WeightConfig{Mode: graph.UniformWeights, WMax: 50}, 7)

	// Solve with eps = 1/4 and space exponent p = 2 (central space
	// ~ n^{3/2} edge words, O(p/eps) sampling rounds).
	res, err := core.SolveGraph(g, core.Options{Eps: 0.25, P: 2, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dual-primal matching: %d edges, weight %.2f\n", res.Matching.Size(), res.Weight)
	fmt.Printf("resource usage: %d init + %d sampling rounds, peak %d sampled edges, %d oracle uses\n",
		res.Stats.InitRounds, res.Stats.SamplingRounds,
		res.Stats.PeakSampleEdges, res.Stats.OracleUses)

	// Exact optimum for reference (O(n^3) blossom — fine at this size).
	_, opt := matching.MaxWeightMatchingFloat(g, false)
	fmt.Printf("exact optimum %.2f -> ratio %.4f (target >= %.2f)\n", opt, res.Weight/opt, 1-0.25)
}
