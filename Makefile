# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go
REV ?= dev

.PHONY: check fmt vet build test race bench experiments bench-json

check: fmt vet build race

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Root testing.B benchmarks: one per experiment table, quick mode.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Full-scale experiment tables (EXPERIMENTS.md is a captured run).
experiments:
	$(GO) run ./cmd/matchbench

# Machine-readable quick-scale capture: BENCH_$(REV).json (the perf
# trajectory; see cmd/matchbench -json).
bench-json:
	$(GO) run ./cmd/matchbench -quick -json -rev $(REV)
