# Tier-1 gate: everything `make check` runs must stay green.

GO ?= go
REV ?= dev

# Third-party linters, pinned so CI is reproducible. They are fetched
# with `go run pkg@version`, which needs network access: the lint
# target runs them only when the module proxy is reachable (or when
# LINT_STRICT=1 forces the failure, as CI does).
STATICCHECK_VERSION ?= honnef.co/go/tools/cmd/staticcheck@2025.1.1
GOVULNCHECK_VERSION ?= golang.org/x/vuln/cmd/govulncheck@v1.1.4

.PHONY: check fmt vet build test race fuzz lint bench experiments bench-json bench-gate bench-profile bench-allocs

check: fmt vet build race lint fuzz

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Static analysis: the repo-invariant analyzers (always — they build
# from this module with no network), then the pinned third-party
# linters when they can be fetched. LINT_STRICT=1 (CI) turns a skipped
# third-party linter into a failure instead.
lint:
	$(GO) run ./cmd/matchlint ./...
	@if GOFLAGS= $(GO) run $(STATICCHECK_VERSION) ./... 2>/dev/null; then \
		echo "staticcheck: ok"; \
	elif [ "$(LINT_STRICT)" = "1" ]; then \
		echo "staticcheck failed or could not be fetched"; exit 1; \
	else \
		echo "staticcheck: skipped (offline or findings; set LINT_STRICT=1 to enforce)"; \
	fi
	@if GOFLAGS= $(GO) run $(GOVULNCHECK_VERSION) ./... 2>/dev/null; then \
		echo "govulncheck: ok"; \
	elif [ "$(LINT_STRICT)" = "1" ]; then \
		echo "govulncheck failed or could not be fetched"; exit 1; \
	else \
		echo "govulncheck: skipped (offline or findings; set LINT_STRICT=1 to enforce)"; \
	fi

# Short fuzz smoke over the RBG1/RBG2 decoders: hostile bytes must be
# rejected with a typed error, never a panic or hostile allocation.
fuzz:
	$(GO) test ./internal/stream/ -run=^$$ -fuzz=FuzzOpenBinary -fuzztime=10s

# Root testing.B benchmarks: one per experiment table, quick mode.
bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Full-scale experiment tables (EXPERIMENTS.md is a captured run).
experiments:
	$(GO) run ./cmd/matchbench

# Machine-readable quick-scale capture: BENCH_$(REV).json (the perf
# trajectory; see cmd/matchbench -json).
bench-json:
	$(GO) run ./cmd/matchbench -quick -json -rev $(REV)

# Bench smoke gate: the newest capture must show no wall-time
# regressions against the previous one (exit 1 otherwise).
BENCH_OLD ?= BENCH_pr9.json
BENCH_NEW ?= BENCH_pr10.json
bench-gate:
	$(GO) run ./cmd/matchbench -compare $(BENCH_OLD) $(BENCH_NEW)

# Allocation-profile smoke: the allocs/op benchmarks for the pooled
# and allocation-flat paths — arena-fed bank builds and the batched
# field-update kernel in internal/sketch, session-reuse solves through
# the facade — at -benchtime=1x so CI sees the counters without paying
# a full benchmark run.
bench-allocs:
	$(GO) test -run='^$$' -bench='BenchmarkBankBuildArena|BenchmarkOneSparseUpdate|BenchmarkBankUpdateBlock' -benchmem -benchtime=1x ./internal/sketch/
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1x ./match/

# Profile the two dominant experiments (EA, E14) so the next perf PR
# starts from data; see "Profile snapshot" in EXPERIMENTS.md.
bench-profile:
	$(GO) test -run=^$$ -bench='BenchmarkEAblations|BenchmarkE14Workers' \
		-benchtime=1x -cpuprofile=cpu.pprof -memprofile=mem.pprof .
	$(GO) tool pprof -top -nodecount=10 repro.test cpu.pprof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space repro.test mem.pprof
